"""Self-contained native kernel for the near-memory hot-row cache.

The one sequential piece of the RecNMP-style replay engine
(:mod:`repro.memory.near_memory`) is the per-DIMM hot-row cache: exact
LRU over row ids, probed in trace order, where each access's hit/miss
outcome depends on every earlier access to the same DIMM. Everything
else — row→rank placement, per-rank occupancy, pool critical paths — is
whole-trace integer array arithmetic (:mod:`repro.memory.nmp_vectorized`).

So the native kernel is deliberately tiny: it walks the lookup trace once,
maintains the per-DIMM LRU tag arrays **in place on the engine's
structure-of-arrays numpy state**, and emits one hit/miss byte per
lookup. Compilation goes through the shared
:func:`repro.hw._native.compile_cached` toolchain (same build cache, same
``REPRO_DISABLE_NATIVE=1`` off-switch); without a compiler the pure-Python
batch kernel in :mod:`repro.memory.nmp_vectorized` implements identical
semantics and the equivalence suite (``tests/test_nmp_equivalence.py``)
proves all three paths bit-identical against the per-access reference.
"""

from __future__ import annotations

import ctypes

import numpy as np

from ..hw._native import compile_cached

__all__ = ["NmpNativeKernel", "load_nmp_kernel", "nmp_native_available"]

# Mirror of the reference OrderedDict hot cache in repro.memory.near_memory:
# slots 0..occ-1 of a DIMM's tag row hold resident row ids in LRU→MRU order
# (slot 0 is the next victim), exactly the reference dict's iteration order.
#
# Internally each DIMM's cache is a chained hash table over row ids plus a
# doubly-linked LRU list — O(1) per lookup, like the OrderedDict it mirrors
# (a linear tag scan would be O(capacity) per access and forfeit the whole
# native speedup). The SoA tag matrix is only the *interchange format*: the
# kernel rebuilds its structures from it on entry and serializes the LRU
# order back on exit, so Python-side state stays engine-agnostic.
_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef uint8_t u8;

/* Row ids are validated non-negative, so when num_ranks / ranks_per_dimm
 * are powers of two (the default geometry) the div/mod placement becomes
 * mask/shift. pow2_shift returns the shift, or -1 when not a power of 2. */
static int pow2_shift(i64 value) {
    if (value <= 0 || (value & (value - 1)) != 0)
        return -1;
    int shift = 0;
    while ((value >>= 1) != 0)
        shift++;
    return shift;
}

#define PLACE_ROW(row, rank, dimm)                                        \
    do {                                                                  \
        (rank) = rank_shift >= 0 ? ((row) & (num_ranks - 1))              \
                                 : ((row) % num_ranks);                   \
        (dimm) = rpd_shift >= 0 ? ((rank) >> rpd_shift)                   \
                                : ((rank) / ranks_per_dimm);              \
    } while (0)

int repro_nmp_hot_flags(const i64 *rows, i64 n_rows,
                        i64 *tags, i64 *occ,
                        i64 num_dimms, i64 capacity,
                        i64 ranks_per_dimm, i64 num_ranks,
                        u8 *hits_out) {
    if (capacity == 0) {
        memset(hits_out, 0, (size_t)n_rows);
        return 0;
    }
    i64 hsize = 8;
    while (hsize < 4 * capacity)
        hsize <<= 1;
    i64 hmask = hsize - 1;

    /* Per-DIMM pools: node keys + LRU links + hash chains, one block. */
    i64 nodes = num_dimms * capacity;
    i64 *mem = (i64 *)malloc((size_t)(4 * nodes + num_dimms * (hsize + 3)) *
                             sizeof(i64));
    if (mem == NULL)
        return 1; /* nothing mutated; the caller raises */
    i64 *key = mem;
    i64 *prv = key + nodes;
    i64 *nxt = prv + nodes;
    i64 *hnext = nxt + nodes;
    i64 *bucket = hnext + nodes;
    i64 *head = bucket + num_dimms * hsize;
    i64 *tail = head + num_dimms;
    i64 *count = tail + num_dimms;
    memset(bucket, -1, (size_t)(num_dimms * hsize) * sizeof(i64));

    /* Rebuild each DIMM's list+table from the tag row (LRU -> MRU). */
    for (i64 d = 0; d < num_dimms; ++d) {
        head[d] = tail[d] = -1;
        count[d] = occ[d];
        for (i64 k = 0; k < occ[d]; ++k) {
            i64 node = d * capacity + k;
            i64 row = tags[node];
            key[node] = row;
            prv[node] = tail[d];
            nxt[node] = -1;
            if (tail[d] >= 0)
                nxt[tail[d]] = node;
            else
                head[d] = node;
            tail[d] = node;
            i64 *slot = bucket + d * hsize +
                        (i64)(((u64)row * 0x9E3779B97F4A7C15ULL >> 32) & (u64)hmask);
            hnext[node] = *slot;
            *slot = node;
        }
    }

    int rank_shift = pow2_shift(num_ranks);
    int rpd_shift = pow2_shift(ranks_per_dimm);
    for (i64 i = 0; i < n_rows; ++i) {
        i64 row = rows[i];
        i64 rank, dimm;
        PLACE_ROW(row, rank, dimm);
        (void)rank;
        i64 *slot = bucket + dimm * hsize +
                    (i64)(((u64)row * 0x9E3779B97F4A7C15ULL >> 32) & (u64)hmask);
        i64 node = *slot;
        while (node >= 0 && key[node] != row)
            node = hnext[node];
        if (node >= 0) {
            /* Hit: move the node to the MRU end of the list. */
            hits_out[i] = 1;
            if (tail[dimm] != node) {
                if (prv[node] >= 0)
                    nxt[prv[node]] = nxt[node];
                else
                    head[dimm] = nxt[node];
                prv[nxt[node]] = prv[node];
                prv[node] = tail[dimm];
                nxt[node] = -1;
                nxt[tail[dimm]] = node;
                tail[dimm] = node;
            }
            continue;
        }
        hits_out[i] = 0;
        if (count[dimm] >= capacity) {
            /* Evict the LRU node: unchain its old key, reuse the node. */
            node = head[dimm];
            i64 *chain = bucket + dimm * hsize +
                         (i64)(((u64)key[node] * 0x9E3779B97F4A7C15ULL >> 32) &
                               (u64)hmask);
            while (*chain != node)
                chain = hnext + *chain;
            *chain = hnext[node];
            head[dimm] = nxt[node];
            if (head[dimm] >= 0)
                prv[head[dimm]] = -1;
            else
                tail[dimm] = -1;
        } else {
            node = dimm * capacity + count[dimm];
            count[dimm] += 1;
        }
        key[node] = row;
        prv[node] = tail[dimm];
        nxt[node] = -1;
        if (tail[dimm] >= 0)
            nxt[tail[dimm]] = node;
        else
            head[dimm] = node;
        tail[dimm] = node;
        hnext[node] = *slot;
        *slot = node;
    }

    /* Serialize back: tag slots 0..count-1 in LRU -> MRU order. */
    for (i64 d = 0; d < num_dimms; ++d) {
        i64 k = 0;
        for (i64 node = head[d]; node >= 0; node = nxt[node])
            tags[d * capacity + k++] = key[node];
        occ[d] = count[d];
    }
    free(mem);
    return 0;
}

/* Full replay: hot-flags pass (above) plus the pool/rank accounting the
 * vectorized Python engine otherwise does with bincount — one extra O(n)
 * walk, same integer-ns arithmetic, so observables stay bit-identical. */
int repro_nmp_replay(const i64 *rows, i64 n_rows,
                     const i64 *lengths, i64 n_pools,
                     i64 *tags, i64 *occ,
                     i64 num_dimms, i64 capacity,
                     i64 ranks_per_dimm, i64 num_ranks,
                     i64 gather_ns, i64 hit_ns, i64 pool_overhead_ns,
                     u8 *hits_out,
                     i64 *pool_latency_out,
                     i64 *rank_busy_out,
                     i64 *dimm_hits_out,
                     i64 *dimm_misses_out) {
    i64 *rank_load = (i64 *)malloc((size_t)num_ranks * sizeof(i64));
    if (rank_load == NULL)
        return 1;
    int status = repro_nmp_hot_flags(rows, n_rows, tags, occ, num_dimms,
                                     capacity, ranks_per_dimm, num_ranks,
                                     hits_out);
    if (status != 0) {
        free(rank_load);
        return status;
    }
    int rank_shift = pow2_shift(num_ranks);
    int rpd_shift = pow2_shift(ranks_per_dimm);
    i64 cursor = 0;
    for (i64 p = 0; p < n_pools; ++p) {
        memset(rank_load, 0, (size_t)num_ranks * sizeof(i64));
        i64 critical = 0;
        for (i64 j = 0; j < lengths[p]; ++j, ++cursor) {
            i64 rank, dimm;
            PLACE_ROW(rows[cursor], rank, dimm);
            i64 cost;
            if (hits_out[cursor]) {
                cost = hit_ns;
                dimm_hits_out[dimm] += 1;
            } else {
                cost = gather_ns;
                dimm_misses_out[dimm] += 1;
            }
            i64 load = rank_load[rank] + cost;
            rank_load[rank] = load;
            rank_busy_out[rank] += cost;
            if (load > critical)
                critical = load;
        }
        pool_latency_out[p] = critical + pool_overhead_ns;
    }
    free(rank_load);
    return 0;
}
"""

_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_uint8)


class NmpNativeKernel:
    """ctypes facade over the compiled hot-row-cache kernel."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._hot_flags = lib.repro_nmp_hot_flags
        self._hot_flags.restype = ctypes.c_int
        self._hot_flags.argtypes = [
            _I64P,
            ctypes.c_int64,
            _I64P,
            _I64P,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            _U8P,
        ]
        self._replay = lib.repro_nmp_replay
        self._replay.restype = ctypes.c_int
        self._replay.argtypes = [
            _I64P,
            ctypes.c_int64,
            _I64P,
            ctypes.c_int64,
            _I64P,
            _I64P,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            _U8P,
            _I64P,
            _I64P,
            _I64P,
            _I64P,
        ]

    def hot_flags(
        self,
        rows: np.ndarray,
        tags: np.ndarray,
        occupancy: np.ndarray,
        capacity: int,
        ranks_per_dimm: int,
        num_ranks: int,
    ) -> np.ndarray:
        """Replay ``rows`` through the per-DIMM LRU state; returns hit bytes."""
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        hits = np.zeros(rows.size, dtype=np.uint8)
        status = self._hot_flags(
            rows.ctypes.data_as(_I64P),
            rows.size,
            tags.ctypes.data_as(_I64P),
            occupancy.ctypes.data_as(_I64P),
            occupancy.size,
            int(capacity),
            int(ranks_per_dimm),
            int(num_ranks),
            hits.ctypes.data_as(_U8P),
        )
        if status != 0:
            raise MemoryError("NMP kernel scratch allocation failed")
        return hits

    def replay(
        self,
        rows: np.ndarray,
        lengths: np.ndarray,
        tags: np.ndarray,
        occupancy: np.ndarray,
        capacity: int,
        ranks_per_dimm: int,
        num_ranks: int,
        gather_ns: int,
        hit_ns: int,
        pool_overhead_ns: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Full replay in C: hot flags plus pool/rank accounting.

        Returns ``(pool_latencies_ns, per_rank_busy_ns, per_dimm_hits,
        per_dimm_misses)`` — the same integer observables the numpy
        accounting path produces.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        num_dimms = int(occupancy.size)
        hits = np.zeros(rows.size, dtype=np.uint8)
        pool_latencies = np.zeros(lengths.size, dtype=np.int64)
        rank_busy = np.zeros(num_ranks, dtype=np.int64)
        dimm_hits = np.zeros(num_dimms, dtype=np.int64)
        dimm_misses = np.zeros(num_dimms, dtype=np.int64)
        status = self._replay(
            rows.ctypes.data_as(_I64P),
            rows.size,
            lengths.ctypes.data_as(_I64P),
            lengths.size,
            tags.ctypes.data_as(_I64P),
            occupancy.ctypes.data_as(_I64P),
            num_dimms,
            int(capacity),
            int(ranks_per_dimm),
            int(num_ranks),
            int(gather_ns),
            int(hit_ns),
            int(pool_overhead_ns),
            hits.ctypes.data_as(_U8P),
            pool_latencies.ctypes.data_as(_I64P),
            rank_busy.ctypes.data_as(_I64P),
            dimm_hits.ctypes.data_as(_I64P),
            dimm_misses.ctypes.data_as(_I64P),
        )
        if status != 0:
            raise MemoryError("NMP kernel scratch allocation failed")
        return pool_latencies, rank_busy, dimm_hits, dimm_misses


_CACHED: tuple[bool, NmpNativeKernel | None] | None = None


def nmp_native_available() -> bool:
    """True when the compiled NMP kernel is usable in this process."""
    return load_nmp_kernel() is not None


def load_nmp_kernel() -> NmpNativeKernel | None:
    """Compile (once) and load the NMP kernel; None when unavailable."""
    global _CACHED
    if _CACHED is not None:
        return _CACHED[1]
    try:
        path = compile_cached(_C_SOURCE, "repro_nmp")
        kernel = NmpNativeKernel(ctypes.CDLL(str(path))) if path else None
    except OSError:
        kernel = None
    _CACHED = (kernel is not None, kernel)
    return kernel
