"""Training substrate: losses, metrics, manual backward, SGD trainer."""

from .losses import bce_with_logits, bce_with_logits_grad
from .metrics import log_loss, roc_auc
from .optimizers import Adagrad, MomentumSGD, Optimizer, SGD
from .trainable import Gradients, TrainableDLRM
from .trainer import Trainer, TrainingReport

__all__ = [
    "bce_with_logits",
    "bce_with_logits_grad",
    "log_loss",
    "roc_auc",
    "Adagrad",
    "MomentumSGD",
    "Optimizer",
    "SGD",
    "Gradients",
    "TrainableDLRM",
    "Trainer",
    "TrainingReport",
]
