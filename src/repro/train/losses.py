"""Loss functions for CTR training.

CTR prediction is binary classification; the standard objective is binary
cross-entropy on the logit (the value *before* the final sigmoid), which
is numerically stable and has the famously simple gradient
``sigmoid(logit) - label``.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy computed stably from logits."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have the same length")
    if logits.size == 0:
        raise ValueError("need at least one sample")
    # log(1 + exp(-|x|)) + max(x, 0) - x * y
    losses = np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0) - logits * labels
    return float(losses.mean())


def bce_with_logits_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d(logits) = (sigmoid(logits) - labels) / N."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have the same length")
    return ((_sigmoid(logits) - labels) / logits.size).astype(np.float32)
