"""Optimizers for DLRM training: SGD, momentum, and Adagrad.

Adagrad is the production standard for embedding tables (DLRM's default):
its per-parameter learning rates handle the wildly different update
frequencies of hot and cold rows, and its state for embeddings is kept
*sparse* — only touched rows carry accumulator entries — which is what
makes it affordable on multi-GB tables.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.model import RecommendationModel
from ..core.operators import FullyConnected
from .trainable import Gradients


class Optimizer(abc.ABC):
    """Applies :class:`~repro.train.trainable.Gradients` to a model."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    @abc.abstractmethod
    def apply(self, model: RecommendationModel, grads: Gradients) -> None:
        """One in-place parameter update."""

    def _fc_ops(self, model: RecommendationModel) -> dict[str, FullyConnected]:
        return {
            op.name: op
            for op in model.operators()
            if isinstance(op, FullyConnected)
        }


class SGD(Optimizer):
    """Plain stochastic gradient descent (sparse embedding updates)."""

    def apply(self, model: RecommendationModel, grads: Gradients) -> None:
        fc_ops = self._fc_ops(model)
        for name, (d_w, d_b) in grads.fc.items():
            op = fc_ops[name]
            op.weight -= self.lr * d_w.astype(np.float32)
            op.bias -= self.lr * d_b.astype(np.float32)
        for i, (rows, grad_rows) in grads.tables.items():
            model.tables[i].data[rows] -= self.lr * grad_rows


class MomentumSGD(Optimizer):
    """SGD with heavy-ball momentum on the dense (FC) parameters.

    Embedding rows update without momentum: keeping velocity for billions
    of rarely-touched rows would defeat the sparse-update economics.
    """

    def __init__(self, lr: float, momentum: float = 0.9) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def apply(self, model: RecommendationModel, grads: Gradients) -> None:
        fc_ops = self._fc_ops(model)
        for name, (d_w, d_b) in grads.fc.items():
            op = fc_ops[name]
            if name not in self._velocity:
                self._velocity[name] = (
                    np.zeros_like(op.weight),
                    np.zeros_like(op.bias),
                )
            v_w, v_b = self._velocity[name]
            v_w *= self.momentum
            v_w += d_w.astype(np.float32)
            v_b *= self.momentum
            v_b += d_b.astype(np.float32)
            op.weight -= self.lr * v_w
            op.bias -= self.lr * v_b
        for i, (rows, grad_rows) in grads.tables.items():
            model.tables[i].data[rows] -= self.lr * grad_rows


class Adagrad(Optimizer):
    """Adagrad with sparse per-row accumulators for embeddings.

    Update: ``p -= lr * g / (sqrt(G) + eps)`` where ``G`` accumulates
    squared gradients. Embedding accumulators are row-granular (one scalar
    per row, DLRM-style), created lazily on first touch.
    """

    def __init__(self, lr: float, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self._fc_state: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._table_state: dict[int, dict[int, float]] = {}

    def apply(self, model: RecommendationModel, grads: Gradients) -> None:
        fc_ops = self._fc_ops(model)
        for name, (d_w, d_b) in grads.fc.items():
            op = fc_ops[name]
            if name not in self._fc_state:
                self._fc_state[name] = (
                    np.zeros_like(op.weight),
                    np.zeros_like(op.bias),
                )
            g_w, g_b = self._fc_state[name]
            d_w32 = d_w.astype(np.float32)
            d_b32 = d_b.astype(np.float32)
            g_w += d_w32**2
            g_b += d_b32**2
            op.weight -= self.lr * d_w32 / (np.sqrt(g_w) + self.eps)
            op.bias -= self.lr * d_b32 / (np.sqrt(g_b) + self.eps)

        for i, (rows, grad_rows) in grads.tables.items():
            state = self._table_state.setdefault(i, {})
            table = model.tables[i].data
            row_sq = (grad_rows**2).mean(axis=1)  # row-granular accumulator
            for k, row in enumerate(rows):
                row = int(row)
                state[row] = state.get(row, 0.0) + float(row_sq[k])
                scale = self.lr / (np.sqrt(state[row]) + self.eps)
                table[row] -= scale * grad_rows[k]

    def touched_rows(self, table_index: int) -> int:
        """Accumulator entries for one table (sparse-state footprint)."""
        return len(self._table_state.get(table_index, {}))
