"""Minibatch SGD training loop for DLRM models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic_ctr import SyntheticCtrDataset
from .losses import bce_with_logits, bce_with_logits_grad
from .metrics import log_loss, roc_auc
from .optimizers import Optimizer, SGD
from .trainable import TrainableDLRM


@dataclass(frozen=True)
class TrainingReport:
    """Summary of one training run."""

    steps: int
    batch_size: int
    losses: tuple[float, ...]
    eval_log_loss: float
    eval_auc: float

    @property
    def initial_loss(self) -> float:
        """Mean loss over the first tenth of training."""
        head = max(1, len(self.losses) // 10)
        return float(np.mean(self.losses[:head]))

    @property
    def final_loss(self) -> float:
        """Mean loss over the last tenth of training."""
        tail = max(1, len(self.losses) // 10)
        return float(np.mean(self.losses[-tail:]))


class Trainer:
    """Trains a :class:`TrainableDLRM` on a synthetic CTR stream.

    Args:
        trainable: the model under training.
        dataset: labelled batch source.
        lr: learning rate for the default SGD optimizer.
        optimizer: update rule; defaults to :class:`~repro.train.optimizers.SGD`
            at ``lr`` (pass :class:`~repro.train.optimizers.Adagrad` for the
            production-style rule).
    """

    def __init__(
        self,
        trainable: TrainableDLRM,
        dataset: SyntheticCtrDataset,
        lr: float = 0.1,
        optimizer: Optimizer | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.trainable = trainable
        self.dataset = dataset
        self.lr = lr
        self.optimizer = optimizer or SGD(lr)

    def fit(
        self,
        steps: int,
        batch_size: int = 128,
        eval_samples: int = 2048,
    ) -> TrainingReport:
        """Run ``steps`` SGD steps, then evaluate on held-out samples."""
        if steps < 1:
            raise ValueError("steps must be positive")
        losses = []
        for _ in range(steps):
            batch = self.dataset.batch(batch_size)
            logits, cache = self.trainable.forward_logits(batch.dense, batch.sparse)
            losses.append(bce_with_logits(logits, batch.labels))
            grads = self.trainable.backward(
                bce_with_logits_grad(logits, batch.labels), cache
            )
            self.optimizer.apply(self.trainable.model, grads)
        eval_loss, eval_auc = self.evaluate(eval_samples)
        return TrainingReport(
            steps=steps,
            batch_size=batch_size,
            losses=tuple(losses),
            eval_log_loss=eval_loss,
            eval_auc=eval_auc,
        )

    def evaluate(self, samples: int = 2048) -> tuple[float, float]:
        """Held-out log-loss and AUC."""
        batch = self.dataset.batch(samples)
        probs = self.trainable.predict(batch.dense, batch.sparse)
        return log_loss(probs, batch.labels), roc_auc(probs, batch.labels)
