"""Trainable DLRM: manual forward caching + backward + SGD.

Training makes the library a complete DLRM implementation rather than an
inference-only artifact. Gradients are derived by hand per operator (the
model is a short, fixed pipeline, so full autograd machinery would be
overkill):

* FC: ``dX = dY W^T``, ``dW = X^T dY``, ``db = sum(dY)``
* ReLU: ``dX = dY * (Z > 0)``
* Concat: split the gradient at the feature boundaries
* SLS: scatter-add — each looked-up row receives its sample's gradient
  (the sparse update that makes embedding training tractable: only touched
  rows move)
* Dot interaction: for ``G = T T^T`` (lower triangle kept),
  ``dT = (dG + dG^T) T`` with ``dG`` scattered back into the triangle.

The final sigmoid is folded into the loss
(:func:`repro.train.losses.bce_with_logits`), so training operates on
logits; inference-time probabilities come from the wrapped
:class:`~repro.core.model.RecommendationModel` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.model import RecommendationModel
from ..core.operators import Activation, FullyConnected, SparseBatch
from .losses import bce_with_logits, bce_with_logits_grad


@dataclass
class Gradients:
    """Gradients of one minibatch.

    Attributes:
        fc: per-FC-operator (dW, db), keyed by operator name.
        tables: per-table sparse gradients as (unique_rows, grad_rows),
            keyed by table index.
    """

    fc: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    tables: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)


class TrainableDLRM:
    """Wraps a :class:`RecommendationModel` with training support.

    The wrapped model's parameters are updated in place, so the same object
    serves for inference after (or during) training.
    """

    def __init__(self, model: RecommendationModel) -> None:
        self.model = model
        final = model.top_ops[-1]
        if not (isinstance(final, Activation) and final.kind == "sigmoid"):
            raise ValueError(
                "training expects a CTR model whose Top-MLP ends in a sigmoid"
            )

    # ---------------------------------------------------------------- forward

    def forward_logits(
        self, dense: np.ndarray, sparse: list[SparseBatch]
    ) -> tuple[np.ndarray, dict]:
        """Forward pass returning logits and the cache backward() needs."""
        model = self.model
        cache: dict = {"sparse": sparse}
        x = dense.astype(np.float32, copy=False)
        cache["bottom"] = []
        for op in model.bottom_ops:
            cache["bottom"].append((op, x))
            x = op.forward(x)

        pooled = [sls.forward(sp) for sls, sp in zip(model.sls_ops, sparse)]
        cache["bottom_out"] = x
        cache["pooled"] = pooled

        if model.interaction_op is not None:
            stacked = np.stack([x, *pooled], axis=1)
            cache["stacked"] = stacked
            interactions = model.interaction_op.forward(stacked)
            combined = np.concatenate([x, interactions], axis=1)
        else:
            combined = np.concatenate([x, *pooled], axis=1)

        y = combined
        cache["top"] = []
        for op in model.top_ops[:-1]:  # exclude the final sigmoid
            cache["top"].append((op, y))
            y = op.forward(y)
        return y.reshape(-1), cache

    # --------------------------------------------------------------- backward

    def backward(self, dlogits: np.ndarray, cache: dict) -> Gradients:
        """Backpropagate d(loss)/d(logits) through the cached forward."""
        model = self.model
        grads = Gradients()
        grad = dlogits.reshape(-1, 1).astype(np.float32)

        for op, op_input in reversed(cache["top"]):
            grad = self._op_backward(op, op_input, grad, grads)

        bottom_out = cache["bottom_out"]
        dense_dim = bottom_out.shape[1]
        if model.interaction_op is not None:
            d_dense_direct = grad[:, :dense_dim]
            d_inter = grad[:, dense_dim:]
            d_stacked = self._dot_backward(model.interaction_op, cache["stacked"], d_inter)
            d_dense = d_dense_direct + d_stacked[:, 0, :]
            d_pooled = [d_stacked[:, 1 + i, :] for i in range(len(model.sls_ops))]
        else:
            d_dense = grad[:, :dense_dim]
            d_pooled = []
            offset = dense_dim
            for sls in model.sls_ops:
                d_pooled.append(grad[:, offset : offset + sls.table.dim])
                offset += sls.table.dim

        for i, (sls, sp, d_out) in enumerate(
            zip(model.sls_ops, cache["sparse"], d_pooled)
        ):
            grads.tables[i] = self._sls_backward(sp, d_out)

        grad = d_dense
        for op, op_input in reversed(cache["bottom"]):
            grad = self._op_backward(op, op_input, grad, grads)
        return grads

    def _op_backward(self, op, op_input, grad, grads: Gradients):
        if isinstance(op, FullyConnected):
            d_w = op_input.T @ grad
            d_b = grad.sum(axis=0)
            grads.fc[op.name] = (d_w, d_b)
            return grad @ op.weight.T
        if isinstance(op, Activation):
            if op.kind == "relu":
                return grad * (op.forward(op_input) > 0)
            raise ValueError(f"unexpected activation {op.kind!r} mid-network")
        raise ValueError(f"no backward rule for {type(op).__name__}")

    @staticmethod
    def _sls_backward(batch: SparseBatch, d_out: np.ndarray):
        segment = np.repeat(np.arange(batch.batch_size), batch.lengths)
        per_lookup = d_out[segment]  # each looked-up row gets its sample grad
        unique_rows, inverse = np.unique(batch.ids, return_inverse=True)
        grad_rows = np.zeros((unique_rows.size, d_out.shape[1]), dtype=np.float32)
        np.add.at(grad_rows, inverse, per_lookup)
        return unique_rows, grad_rows

    @staticmethod
    def _dot_backward(interaction, stacked: np.ndarray, d_pairs: np.ndarray):
        batch = stacked.shape[0]
        v = interaction.num_vectors
        lower_i, lower_j = np.tril_indices(v, k=-1)
        d_gram = np.zeros((batch, v, v), dtype=np.float32)
        d_gram[:, lower_i, lower_j] = d_pairs
        sym = d_gram + np.transpose(d_gram, (0, 2, 1))
        return np.matmul(sym, stacked)

    # ------------------------------------------------------------------- sgd

    def apply_sgd(self, grads: Gradients, lr: float) -> None:
        """In-place SGD step (sparse updates for embedding rows)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        fc_ops = {
            op.name: op
            for op in self.model.operators()
            if isinstance(op, FullyConnected)
        }
        for name, (d_w, d_b) in grads.fc.items():
            op = fc_ops[name]
            op.weight -= lr * d_w.astype(np.float32)
            op.bias -= lr * d_b.astype(np.float32)
        for i, (rows, grad_rows) in grads.tables.items():
            self.model.tables[i].data[rows] -= lr * grad_rows

    # ------------------------------------------------------------------ step

    def train_step(
        self,
        dense: np.ndarray,
        sparse: list[SparseBatch],
        labels: np.ndarray,
        lr: float,
    ) -> float:
        """One SGD minibatch step; returns the batch BCE loss."""
        logits, cache = self.forward_logits(dense, sparse)
        loss = bce_with_logits(logits, labels)
        grads = self.backward(bce_with_logits_grad(logits, labels), cache)
        self.apply_sgd(grads, lr)
        return loss

    def predict(self, dense: np.ndarray, sparse: list[SparseBatch]) -> np.ndarray:
        """CTR probabilities from the (trained) wrapped model."""
        return self.model.forward(dense, sparse)
