"""Evaluation metrics for CTR models: log-loss and ROC-AUC."""

from __future__ import annotations

import numpy as np

from .losses import bce_with_logits


def log_loss(probabilities: np.ndarray, labels: np.ndarray, eps: float = 1e-7) -> float:
    """Mean negative log-likelihood of probabilistic CTR predictions."""
    p = np.clip(np.asarray(probabilities, dtype=np.float64).reshape(-1), eps, 1 - eps)
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    if p.shape != y.shape or p.size == 0:
        raise ValueError("probabilities and labels must be equal-length, non-empty")
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic.

    Handles tied scores by mid-ranking. Requires both classes present.
    """
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    y = np.asarray(labels).reshape(-1).astype(bool)
    if s.shape != y.shape or s.size == 0:
        raise ValueError("scores and labels must be equal-length, non-empty")
    positives = int(y.sum())
    negatives = int(y.size - positives)
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both positive and negative samples")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(s.size, dtype=np.float64)
    sorted_scores = s[order]
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # mid-rank, 1-based
        i = j + 1
    positive_rank_sum = float(ranks[y].sum())
    u = positive_rank_sum - positives * (positives + 1) / 2.0
    return u / (positives * negatives)


__all__ = ["bce_with_logits", "log_loss", "roc_auc"]
