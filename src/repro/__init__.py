"""repro: reproduction of "The Architectural Implications of Facebook's
DNN-Based Personalized Recommendation" (HPCA 2020).

Public API highlights:

* :mod:`repro.config` -- model configuration space and RMC1/2/3 presets.
* :mod:`repro.core` -- executable DLRM/NCF models, operators, profiling.
* :mod:`repro.hw` -- Haswell/Broadwell/Skylake server timing simulator.
* :mod:`repro.serving` -- batching, co-location, SLA and fleet simulation.
* :mod:`repro.data` -- dense/sparse input generators and embedding traces.
* :mod:`repro.obs` -- request tracing, metrics registry, operator profiling.
* :mod:`repro.experiments` -- one module per paper figure/table.
"""

from . import (
    analysis,
    config,
    core,
    data,
    experiments,
    hw,
    memory,
    obs,
    serving,
    train,
    validation,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "config",
    "core",
    "data",
    "experiments",
    "hw",
    "memory",
    "obs",
    "serving",
    "train",
    "validation",
    "__version__",
]
