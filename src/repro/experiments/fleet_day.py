"""Figure fleet (extension): a full diurnal day at production fleet scale.

The serving figures so far stress a handful of replicas for a fraction of
a second — enough to expose mechanisms, far short of the operating point
the paper describes (thousands of machines, diurnal load, millions of
users). This experiment closes that gap using the vectorized DES engine:
a reactive autoscaler tracks a sinusoidal day of demand (plus a seeded
capacity incident it must over-provision around), and each sampled
window of the day is served by a :class:`ResilientRouter` sized to the
autoscaler's fleet at that hour, with the full overload-protection stack
(deadline-aware admission, CoDel, per-replica breakers, brownout) and a
per-window fault storm composed on top.

Every window draws its arrivals, service noise, and faults from seeds
derived from the experiment seed, so the day is reproducible
record-for-record — and because both DES engines are bit-identical, the
``engine`` argument changes wall-clock time, never results. At the
default scale (~1050 replicas at peak, 48 windows) the day offers well
over a million requests; the reference engine's per-event fleet scans
make that take hours, the vectorized engine minutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analysis.distributions import LatencySummary
from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..serving.autoscaler import Autoscaler, DiurnalLoad
from ..serving.faults import ResiliencePolicy, ResilientRouter, fault_storm
from ..serving.metrics import SLA, check_conservation
from ..serving.overload import (
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPolicy,
    OverloadConfig,
    default_brownout_tiers,
)


@dataclass(frozen=True)
class DayIncident:
    """A seeded capacity incident the autoscaler must ride through."""

    start_hour: float
    duration_hours: float
    capacity_loss: float

    def healthy_fraction(self, hour: float) -> float:
        """Fraction of provisioned replicas serving at ``hour``."""
        if self.start_hour <= hour < self.start_hour + self.duration_hours:
            return 1.0 - self.capacity_loss
        return 1.0


@dataclass(frozen=True)
class WindowStats:
    """One sampled serving window of the day."""

    hour: float
    demand_items_per_s: float
    replicas: int
    offered: int
    completed: int
    failed: int
    shed: int
    breaker_opens: int
    summary: LatencySummary
    goodput_qps: float


@dataclass(frozen=True)
class FleetDayResult:
    """A day of fleet-scale serving, window by window."""

    server_name: str
    model_name: str
    batch_size: int
    engine: str
    peak_replicas: int
    machine_hours: float
    window_sim_s: float
    sla_deadline_s: float
    incident: DayIncident
    windows: list[WindowStats]

    @property
    def total_offered(self) -> int:
        """Requests offered across every simulated window."""
        return sum(w.offered for w in self.windows)

    @property
    def total_completed(self) -> int:
        """Requests answered (possibly degraded) across the day."""
        return sum(w.completed for w in self.windows)

    @property
    def total_shed(self) -> int:
        """Requests shed by admission control / CoDel across the day."""
        return sum(w.shed for w in self.windows)

    @property
    def total_failed(self) -> int:
        """Requests that exhausted retries across the day."""
        return sum(w.failed for w in self.windows)

    @property
    def availability(self) -> float:
        """Completed fraction of offered load over the day."""
        offered = self.total_offered
        return self.total_completed / offered if offered else 1.0


def _full_stack(
    base_service_s: float,
    config: ModelConfig,
    sla_deadline_s: float,
    queue_capacity: int,
) -> tuple[ResiliencePolicy, OverloadConfig]:
    """The figure-11y protection ladder's top rung, service-time scaled."""
    policy = ResiliencePolicy(
        timeout_s=30.0 * base_service_s,
        max_retries=1,
        backoff_base_s=base_service_s,
    )
    overload = OverloadConfig(
        admission=AdmissionPolicy(
            queue_capacity=queue_capacity,
            shed_policy="deadline_aware",
            deadline_s=sla_deadline_s,
            codel_target_s=8.0 * base_service_s,
            codel_interval_s=40.0 * base_service_s,
        ),
        breaker=BreakerPolicy(
            failure_threshold=5,
            window_s=60.0 * base_service_s,
            open_duration_s=100.0 * base_service_s,
            half_open_probes=2,
        ),
        brownout=BrownoutPolicy(
            tiers=default_brownout_tiers(config),
            step_up_depth=6.0,
            step_down_depth=1.0,
            dwell_s=20.0 * base_service_s,
        ),
    )
    return policy, overload


def run(
    server: ServerSpec = BROADWELL,
    config: ModelConfig = RMC1_SMALL,
    batch_size: int = 8,
    peak_replicas: int = 1050,
    windows: int = 48,
    window_sim_s: float = 0.005,
    target_utilization: float = 0.6,
    trough_ratio: float = 0.35,
    queue_capacity: int = 16,
    sla_deadline_factor: float = 25.0,
    seed: int = 17,
    engine: str = "vectorized",
    metrics: MetricsRegistry | None = None,
    hours: tuple[float, ...] | None = None,
) -> FleetDayResult:
    """Serve one seeded diurnal day across an autoscaled fleet.

    Args:
        server / config / batch_size: the replicated service; each request
            is one batch of ``batch_size`` items.
        peak_replicas: fleet size the autoscaler reaches at the daily
            peak (sets the peak demand; the seeded incident can push the
            actual peak above this).
        windows: evenly spaced serving windows sampled over the 24 h day.
        window_sim_s: simulated horizon of each window (the window's
            offered load is its hour's demand held for this long).
        target_utilization: autoscaler demand/capacity target.
        trough_ratio: overnight demand as a fraction of the peak.
        queue_capacity: per-replica admission queue bound.
        sla_deadline_factor: SLA deadline as a multiple of the
            uncontended service time.
        seed: master seed; windows derive arrival/fault seeds from it.
        engine: DES engine for every window's router (results are
            bit-identical across engines; only wall-clock differs).
        metrics: optional registry each window records into, labelled
            ``hour=<hour>``.
        hours: optional subset of window start hours to simulate (used by
            the benchmark's engine head-to-head); default all windows.
    """
    if windows < 1:
        raise ValueError("need at least one window")
    if window_sim_s <= 0:
        raise ValueError("window_sim_s must be positive")
    base_service_s = (
        TimingModel(server).model_latency(config, batch_size).total_seconds
    )
    sla = SLA(deadline_s=sla_deadline_factor * base_service_s, percentile=0.99)
    policy, overload = _full_stack(
        base_service_s, config, sla.deadline_s, queue_capacity
    )

    autoscaler = Autoscaler(
        server,
        config,
        batch_size=batch_size,
        target_utilization=target_utilization,
    )
    # Peak demand sized so the autoscaler's peak fleet is peak_replicas.
    load = DiurnalLoad(
        peak_items_per_s=(
            peak_replicas * target_utilization * autoscaler.replica_capacity
        ),
        trough_ratio=trough_ratio,
    )
    # One seeded incident (a pod/zone loss) somewhere in the waking day;
    # the autoscaler sees the capacity signal and over-provisions around
    # it after its provisioning delay.
    incident_rng = np.random.default_rng(seed + 2)
    incident = DayIncident(
        start_hour=float(incident_rng.uniform(6.0, 20.0)),
        duration_hours=float(incident_rng.uniform(0.5, 2.0)),
        capacity_loss=float(incident_rng.uniform(0.05, 0.20)),
    )
    tick_hours = 24.0 / windows
    trajectory = autoscaler.run(
        load,
        hours=24.0,
        tick_hours=tick_hours,
        healthy_fraction=incident.healthy_fraction,
    )

    window_stats: list[WindowStats] = []
    for w, step in enumerate(trajectory.steps):
        if hours is not None and step.hour not in hours:
            continue
        offered_qps = step.demand_items_per_s / batch_size
        storm = fault_storm(step.replicas, window_sim_s, seed=seed + 100 + w)
        router = ResilientRouter(
            server,
            config,
            batch_size,
            num_machines=step.replicas,
            policy=policy,
            overload=overload,
            seed=seed + w,
            metrics=metrics,
            metrics_labels={"hour": f"{step.hour:g}"},
            engine=engine,
        )
        result = router.run(
            offered_qps=offered_qps,
            duration_s=window_sim_s,
            faults=storm,
            sla=sla,
        )
        stats = result.stats()
        shed = result.overload.shed if result.overload is not None else 0
        opens = (
            result.overload.breaker_opens if result.overload is not None else 0
        )
        # Router-level conservation: shed attempts roll up into failed
        # (or retried-then-completed) requests, so the request-level books
        # are offered = completed + failed + in-flight.
        check_conservation(
            offered=stats.offered,
            completed=stats.completed,
            failed=stats.failed,
        )
        window_stats.append(
            WindowStats(
                hour=step.hour,
                demand_items_per_s=step.demand_items_per_s,
                replicas=step.replicas,
                offered=stats.offered,
                completed=stats.completed,
                failed=stats.failed,
                shed=shed,
                breaker_opens=opens,
                summary=result.summary(),
                goodput_qps=stats.goodput_qps,
            )
        )
    return FleetDayResult(
        server_name=server.name,
        model_name=config.name,
        batch_size=batch_size,
        engine=engine,
        peak_replicas=trajectory.peak_replicas,
        machine_hours=trajectory.machine_hours,
        window_sim_s=window_sim_s,
        sla_deadline_s=sla.deadline_s,
        incident=incident,
        windows=window_stats,
    )


def render(result: FleetDayResult) -> str:
    """Text rendering of the fleet-day run."""
    rows = []
    for w in result.windows:
        rows.append(
            [
                f"{w.hour:05.2f}",
                w.replicas,
                f"{w.demand_items_per_s / 1e3:.0f}",
                w.offered,
                f"{w.summary.p50 * 1e3:.2f}",
                f"{w.summary.p99 * 1e3:.2f}",
                w.shed,
                w.failed,
                f"{w.goodput_qps:.0f}",
            ]
        )
    title = (
        f"Figure fleet: {result.model_name} on {result.server_name}, "
        f"{len(result.windows)} windows x {result.window_sim_s * 1e3:.0f} ms, "
        f"peak fleet {result.peak_replicas} replicas, engine={result.engine}"
    )
    table = format_table(
        [
            "hour", "replicas", "k items/s", "offered", "p50 ms", "p99 ms",
            "shed", "failed", "goodput qps",
        ],
        rows,
        title=title,
    )
    incident = result.incident
    lines = [
        table,
        (
            f"incident: {100 * incident.capacity_loss:.0f}% capacity loss at "
            f"hour {incident.start_hour:.1f} for "
            f"{incident.duration_hours:.1f} h"
        ),
        (
            f"day totals: {result.total_offered} offered, "
            f"{result.total_completed} completed, {result.total_shed} shed, "
            f"{result.total_failed} failed; availability "
            f"{100 * result.availability:.2f}%; "
            f"{result.machine_hours:.0f} machine-hours"
        ),
    ]
    return "\n".join(lines)
