"""Figure 10: latency/throughput tradeoff under co-location, per server.

Paper, RMC2: starting from no co-location, latency degrades quickly then
plateaus; Broadwell gives the lowest latency at low co-location, Skylake
the highest throughput under high co-location; Skylake shows a sudden
latency jump around 18 co-located jobs (LLC capacity overflow); Haswell
trails throughout. Under a strict latency bound, Skylake maximizes
latency-bounded throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC2_SMALL
from ..hw.server import ALL_SERVERS, ServerSpec
from ..serving.metrics import SLA, ThroughputPoint, latency_bounded_throughput
from ..serving.scheduler import colocation_sweep


@dataclass(frozen=True)
class Figure10Result:
    """Per-server latency/throughput frontiers."""

    model_name: str
    batch_size: int
    sla: SLA
    frontiers: dict[str, list[ThroughputPoint]]

    def point(self, server: str, num_jobs: int) -> ThroughputPoint:
        """One frontier point."""
        for p in self.frontiers[server]:
            if p.num_jobs == num_jobs:
                return p
        raise KeyError(f"no point ({server}, {num_jobs})")

    def best(self, server: str) -> ThroughputPoint | None:
        """Latency-bounded-throughput optimum for one server."""
        return latency_bounded_throughput(self.frontiers[server])


def run(
    config: ModelConfig = RMC2_SMALL,
    servers: tuple[ServerSpec, ...] = ALL_SERVERS,
    batch_size: int = 32,
    sla: SLA = SLA(deadline_s=0.450),
    max_jobs: int = 24,
) -> Figure10Result:
    """Sweep the co-location frontier for each server generation."""
    frontiers = {
        server.name: colocation_sweep(server, config, batch_size, sla, max_jobs)
        for server in servers
    }
    return Figure10Result(
        model_name=config.name, batch_size=batch_size, sla=sla, frontiers=frontiers
    )


def render(result: Figure10Result) -> str:
    """Table plus the latency-bounded-throughput optimum per server."""
    servers = sorted(result.frontiers)
    jobs = [p.num_jobs for p in result.frontiers[servers[0]]]
    show = [n for n in jobs if n in (1, 2, 4, 8, 12, 16, 18, 20, 24)]
    rows = []
    for n in show:
        row: list[object] = [n]
        for server in servers:
            p = result.point(server, n)
            row.append(f"{p.latency_s * 1e3:.1f} / {p.items_per_s / 1e3:.1f}k")
        rows.append(row)
    table = format_table(
        ["N"] + [f"{s} (ms / items/s)" for s in servers],
        rows,
        title=(
            f"Figure 10: {result.model_name} latency/throughput frontier "
            f"(batch {result.batch_size})"
        ),
    )
    best_lines = []
    for server in servers:
        best = result.best(server)
        if best is None:
            best_lines.append(f"{server}: SLA infeasible")
        else:
            best_lines.append(
                f"{server}: best {best.items_per_s / 1e3:.1f}k items/s "
                f"at N={best.num_jobs}"
            )
    sla_ms = result.sla.deadline_s * 1e3
    return f"{table}\nUnder SLA {sla_ms:.0f} ms: " + "; ".join(best_lines)
