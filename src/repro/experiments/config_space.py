"""Figure 13 in action: exploring the benchmark's configuration space.

The open-source benchmark exists so that researchers can sweep its
parameters — number/size of embedding tables, lookups per table, MLP
widths, batch — and watch the bottleneck move. This experiment performs
three canonical sweeps around the RMC1 operating point on Broadwell and
reports latency plus the dominant operator for each setting: growing the
table count or lookups drives a model from FC-bound into SLS-bound
territory (RMC1 → RMC2), while widening the Bottom-MLP drives it toward
RMC3's compute-bound profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.tables import format_table
from ..config.model_config import MLPConfig, ModelConfig, uniform_tables
from ..config.presets import EMBEDDING_DIM, RMC1_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep."""

    sweep: str
    value: int
    latency_ms: float
    dominant_op: str
    sls_share: float
    fc_share: float


@dataclass(frozen=True)
class ConfigSpaceResult:
    """All sweep points."""

    points: list[SweepPoint]

    def sweep(self, name: str) -> list[SweepPoint]:
        """Points of one sweep, in sweep order."""
        return [p for p in self.points if p.sweep == name]


def _point(server: ServerSpec, sweep: str, value: int, config: ModelConfig,
           batch: int) -> SweepPoint:
    latency = TimingModel(server).model_latency(config, batch)
    shares = latency.fraction_by_op_type()
    dominant = max(shares, key=shares.get)
    return SweepPoint(
        sweep=sweep,
        value=value,
        latency_ms=latency.total_seconds * 1e3,
        dominant_op=dominant,
        sls_share=shares.get("SLS", 0.0),
        fc_share=shares.get("FC", 0.0),
    )


def run(
    server: ServerSpec = BROADWELL,
    batch: int = 16,
    table_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    lookup_counts: tuple[int, ...] = (10, 20, 40, 80, 160, 320),
    bottom_widths: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096),
) -> ConfigSpaceResult:
    """Sweep table count, lookups/table and Bottom-MLP width around RMC1."""
    base = RMC1_SMALL
    points: list[SweepPoint] = []

    for n in table_counts:
        config = replace(
            base,
            name=f"tables-{n}",
            embedding_tables=uniform_tables(n, 2_000_000, EMBEDDING_DIM, 80),
        )
        points.append(_point(server, "tables", n, config, batch))

    for lookups in lookup_counts:
        config = replace(
            base,
            name=f"lookups-{lookups}",
            embedding_tables=uniform_tables(2, 2_000_000, EMBEDDING_DIM, lookups),
        )
        points.append(_point(server, "lookups", lookups, config, batch))

    for width in bottom_widths:
        config = replace(
            base,
            name=f"width-{width}",
            bottom_mlp=MLPConfig([width, width // 2, 32]),
        )
        points.append(_point(server, "bottom_width", width, config, batch))

    return ConfigSpaceResult(points=points)


def render(result: ConfigSpaceResult) -> str:
    """Text rendering of the three sweeps."""
    sections = []
    titles = {
        "tables": "sweep: number of embedding tables (rows 2M, 80 lookups)",
        "lookups": "sweep: lookups per table (2 tables, rows 2M)",
        "bottom_width": "sweep: Bottom-MLP width (RMC1 tables)",
    }
    for sweep, title in titles.items():
        rows = [
            [
                p.value,
                f"{p.latency_ms:.3f}",
                p.dominant_op,
                f"{100 * p.sls_share:.0f}",
                f"{100 * p.fc_share:.0f}",
            ]
            for p in result.sweep(sweep)
        ]
        sections.append(
            format_table(
                ["value", "latency ms", "dominant", "SLS %", "FC %"],
                rows,
                title=title,
            )
        )
    return "\n\n".join(sections)
