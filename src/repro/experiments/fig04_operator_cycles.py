"""Figure 4: data-center-wide cycle breakdown by operator.

Paper: FC layers take the largest share; SparseLengthsSum alone is ~15% of
all AI inference cycles — roughly 4x the Conv share and 20x the Recurrent
share — and appears only in recommendation models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..core.operators.base import ALL_OP_TYPES
from ..serving.fleet import Fleet, production_fleet


@dataclass(frozen=True)
class Figure4Result:
    """Operator cycle shares, split by recommendation vs non-rec services."""

    recommendation: dict[str, float]
    non_recommendation: dict[str, float]

    @property
    def total(self) -> dict[str, float]:
        """Combined operator shares."""
        out = dict(self.recommendation)
        for key, value in self.non_recommendation.items():
            out[key] = out.get(key, 0.0) + value
        return out


def run(fleet: Fleet | None = None) -> Figure4Result:
    """Compute the Figure-4 breakdown from the production fleet."""
    fleet = fleet or production_fleet()
    return Figure4Result(
        recommendation=fleet.cycles_by_operator(recommendation_only=True),
        non_recommendation=fleet.cycles_by_operator(recommendation_only=False),
    )


def render(result: Figure4Result) -> str:
    """Text rendering of Figure 4."""
    rows = []
    for op_type in ALL_OP_TYPES:
        rec = 100 * result.recommendation.get(op_type, 0.0)
        non = 100 * result.non_recommendation.get(op_type, 0.0)
        rows.append([op_type, f"{rec:.1f}", f"{non:.1f}", f"{rec + non:.1f}"])
    return format_table(
        ["operator", "rec %", "non-rec %", "total %"],
        rows,
        title="Figure 4: data-center cycles by operator",
    )
