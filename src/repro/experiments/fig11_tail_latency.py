"""Figure 11: tail latency of an FC operator under production co-location.

Paper, production environment: the same FC operator (512x512, ~1 MiB of
weights — fits Skylake's L2 but only Broadwell's LLC) shows a *multi-modal*
latency distribution on Broadwell (modes near 40/58/75 us matching
low/medium/high co-location) but a single mode on Skylake (~45 us). As
co-location rises, Broadwell's p99 blows up in steps while Skylake's mean
and p99 grow gradually; a larger FC (LLC-resident on both) shows the same
contrast more starkly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.distributions import LatencySummary, count_modes, summarize
from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC2_SMALL
from ..hw.server import BROADWELL, SKYLAKE, ServerSpec
from ..serving.simulator import ServingSimulator

#: The Figure-11a operator: 512x512 (~1 MiB weights).
SMALL_FC = (512, 512)
#: The Figure-11c operator: ~9 MiB of weights — exceeds Skylake's L2,
#: resident in both LLCs.
LARGE_FC = (1536, 1536)

#: Co-location regimes mixed in the production environment: machines run
#: few, some, or many inference jobs. At the highest regime job count
#: exceeds Broadwell's physical cores (28) — but not Skylake's (40) — so
#: Broadwell machines also pay the hyperthreading tax, producing its third
#: latency mode.
DEFAULT_REGIMES = (1, 10, 32)


@dataclass(frozen=True)
class TailCurvePoint:
    """Mean/p5/p99 of FC latency at one co-location degree (Fig 11b/c)."""

    num_jobs: int
    summary: LatencySummary


@dataclass(frozen=True)
class ServerTailResult:
    """Figure-11 measurements for one server."""

    server_name: str
    pooled_samples_us: np.ndarray
    modes: int
    curve_small: list[TailCurvePoint]
    curve_large: list[TailCurvePoint]

    def p99_growth(self, curve: list[TailCurvePoint]) -> float:
        """p99 at the highest co-location relative to running alone."""
        return curve[-1].summary.p99 / curve[0].summary.p99


@dataclass(frozen=True)
class Figure11Result:
    """Per-server tail-latency results."""

    servers: dict[str, ServerTailResult]


def _fc_samples(
    sim: ServingSimulator, fc: tuple[int, int], num_jobs: int, duration_s: float
) -> np.ndarray:
    result = sim.run(duration_s)
    return sim.fc_latency_samples(result, fc[0], fc[1])


def run(
    workload: ModelConfig = RMC2_SMALL,
    servers: tuple[ServerSpec, ...] = (BROADWELL, SKYLAKE),
    regimes: tuple[int, ...] = DEFAULT_REGIMES,
    curve_jobs: tuple[int, ...] = (1, 4, 8, 16, 24, 32, 40),
    duration_s: float = 0.6,
    seed: int = 11,
    engine: str = "reference",
) -> Figure11Result:
    """Simulate the production tail-latency study.

    The Figure-11a distribution pools FC samples from machines at each
    co-location regime (closed-loop co-runners, as in production where
    co-located jobs are kept busy); the 11b/11c curves sweep the
    co-location degree directly.
    """
    out: dict[str, ServerTailResult] = {}
    for server in servers:
        physical_cores = server.total_cores

        def simulator(n: int, sim_seed: int) -> ServingSimulator:
            return ServingSimulator(
                server,
                workload,
                32,
                num_instances=min(n, physical_cores),
                hyperthreading=n > physical_cores,
                seed=sim_seed,
                engine=engine,
            )

        pooled: list[np.ndarray] = []
        for i, n in enumerate(regimes):
            sim = simulator(n, seed + i)
            pooled.append(_fc_samples(sim, SMALL_FC, n, duration_s) * 1e6)
        samples = np.concatenate(pooled)

        def curve(fc: tuple[int, int]) -> list[TailCurvePoint]:
            points = []
            for j, n in enumerate(curve_jobs):
                sim = simulator(n, seed + 100 + j)
                fc_samples = _fc_samples(sim, fc, n, duration_s) * 1e6
                points.append(
                    TailCurvePoint(num_jobs=n, summary=summarize(fc_samples))
                )
            return points

        out[server.name] = ServerTailResult(
            server_name=server.name,
            pooled_samples_us=samples,
            modes=count_modes(samples),
            curve_small=curve(SMALL_FC),
            curve_large=curve(LARGE_FC),
        )
    return Figure11Result(servers=out)


def render(result: Figure11Result) -> str:
    """Text rendering of Figure 11."""
    sections = []
    for name, server in result.servers.items():
        sections.append(
            f"Figure 11a ({name}): {server.modes} mode(s) in pooled FC latency "
            f"(mean {server.pooled_samples_us.mean():.1f} us)"
        )
        for label, curve in (("11b small FC", server.curve_small),
                             ("11c large FC", server.curve_large)):
            rows = [
                [
                    p.num_jobs,
                    f"{p.summary.mean:.1f}",
                    f"{p.summary.p5:.1f}",
                    f"{p.summary.p99:.1f}",
                ]
                for p in curve
            ]
            sections.append(
                format_table(
                    ["N", "mean us", "p5 us", "p99 us"],
                    rows,
                    title=f"Figure {label} on {name}",
                )
            )
    return "\n\n".join(sections)
