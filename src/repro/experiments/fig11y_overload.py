"""Figure 11y (extension): overload protection under a flash crowd.

Figure 11 shows co-location pushing an operator's p99 past the SLO
cliff; PR 2's Figure 11x added component faults. This experiment adds
the remaining tail source: *overload*. A replicated model receives a
seeded diurnal trace with a flash crowd riding the peak — several times
the fleet's latency-bounded capacity — while one replica straggles, and
climbs the overload-protection ladder:

1. ``none`` — the unprotected stack: unbounded queues, no timeouts;
   every arrival is eventually served, so the queue (and p99) grows
   without bound for the length of the crowd.
2. ``admission`` — deadline-aware bounded queues plus a CoDel sojourn
   controller: work that cannot meet the SLO is shed at the door, the
   rest is served in bound.
3. ``admission+breaker`` — plus per-attempt timeouts (bounded retries)
   feeding per-replica circuit breakers, so the straggling replica is
   cut out instead of timing out request after request.
4. ``admission+breaker+brownout`` — plus SLO-aware brownout: under
   sustained pressure the service steps down through quality tiers
   (truncated sparse lookups), trading ranking quality for capacity
   headroom, and steps back up when the crowd passes.

Every rung replays the *same* arrival trace against the *same* straggler
(identical seeds), so goodput and tail differences are attributable to
the protection policy alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.distributions import LatencySummary
from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer
from ..serving.faults import (
    FaultSchedule,
    ResiliencePolicy,
    ResilientRouter,
    Straggler,
)
from ..serving.loadgen import DiurnalLoadGenerator, LoadSpike
from ..serving.metrics import SLA, ResilienceStats
from ..serving.overload import (
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPolicy,
    OverloadConfig,
    OverloadStats,
    default_brownout_tiers,
)

#: Policy ladder order (render order and comparison anchors).
POLICY_LADDER = (
    "none",
    "admission",
    "admission+breaker",
    "admission+breaker+brownout",
)


@dataclass(frozen=True)
class OverloadOutcome:
    """One protection policy's showing under the flash crowd."""

    policy_name: str
    summary: LatencySummary
    stats: ResilienceStats
    overload: OverloadStats | None
    brownout_quality: tuple[dict[str, float], ...] | None


@dataclass(frozen=True)
class Figure11yResult:
    """Per-policy outcomes under one seeded flash crowd."""

    server_name: str
    model_name: str
    num_machines: int
    capacity_qps: float
    offered: int
    duration_s: float
    sla_deadline_s: float
    crowd_multiplier: float
    outcomes: dict[str, OverloadOutcome]

    def goodput_fraction(self, policy: str) -> float:
        """Goodput of ``policy`` as a fraction of fleet capacity."""
        return self.outcomes[policy].stats.goodput_qps / self.capacity_qps

    def p99_ratio(
        self,
        baseline: str = "none",
        policy: str = "admission+breaker+brownout",
    ) -> float:
        """p99 of ``baseline`` over ``policy`` (>1 = protection wins)."""
        return (
            self.outcomes[baseline].summary.p99
            / self.outcomes[policy].summary.p99
        )


def _ladder(
    base_service_s: float,
    config: ModelConfig,
    sla_deadline_s: float,
    queue_capacity: int,
    brownout_lookup_caps: tuple[int, ...],
) -> dict[str, tuple[ResiliencePolicy, OverloadConfig | None]]:
    """The ladder, scaled to the model's uncontended service time."""
    # Timeouts only enter at the breaker rung: under overload a timeout
    # plus retry amplifies offered load, so retries stay at 1 and the
    # breaker turns repeated timeouts into fast local rejection instead.
    timeout = ResiliencePolicy(
        timeout_s=30.0 * base_service_s,
        max_retries=1,
        backoff_base_s=base_service_s,
    )
    admission = AdmissionPolicy(
        queue_capacity=queue_capacity,
        shed_policy="deadline_aware",
        deadline_s=sla_deadline_s,
        codel_target_s=8.0 * base_service_s,
        codel_interval_s=40.0 * base_service_s,
    )
    breaker = BreakerPolicy(
        failure_threshold=5,
        window_s=60.0 * base_service_s,
        open_duration_s=100.0 * base_service_s,
        half_open_probes=2,
    )
    brownout = BrownoutPolicy(
        tiers=default_brownout_tiers(config, lookup_caps=brownout_lookup_caps),
        step_up_depth=6.0,
        step_down_depth=1.0,
        dwell_s=20.0 * base_service_s,
    )
    return {
        "none": (ResiliencePolicy.none(), None),
        "admission": (
            ResiliencePolicy.none(),
            OverloadConfig(admission=admission),
        ),
        "admission+breaker": (
            timeout,
            OverloadConfig(admission=admission, breaker=breaker),
        ),
        "admission+breaker+brownout": (
            timeout,
            OverloadConfig(
                admission=admission, breaker=breaker, brownout=brownout
            ),
        ),
    }


def run(
    server: ServerSpec = BROADWELL,
    config: ModelConfig = RMC1_SMALL,
    batch_size: int = 8,
    num_machines: int = 4,
    base_utilization: float = 0.75,
    crowd_multiplier: float = 5.0,
    diurnal_amplitude: float = 0.25,
    duration_s: float = 0.5,
    sla_deadline_factor: float = 25.0,
    queue_capacity: int = 16,
    brownout_lookup_caps: tuple[int, ...] = (8, 2),
    straggler_slowdown: float = 8.0,
    seed: int = 11,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace_policy: str = "admission+breaker+brownout",
    engine: str = "reference",
) -> Figure11yResult:
    """Replay one seeded flash crowd against the protection ladder.

    Args:
        server / config / batch_size: the replicated service.
        num_machines: replica count behind the router.
        base_utilization: diurnal mean load as a fraction of capacity.
        crowd_multiplier: flash-crowd rate multiplier (5 means the spike
            offers ~5x the fleet's capacity).
        diurnal_amplitude: relative swing of the sinusoidal baseline.
        duration_s: simulated horizon (one compressed diurnal cycle).
        sla_deadline_factor: SLA deadline as a multiple of the
            uncontended service time; also the deadline-aware admission
            bound.
        queue_capacity: per-replica admission queue bound.
        brownout_lookup_caps: per-tier sparse-lookup caps (strictly
            decreasing; each cap is one brownout tier).
        straggler_slowdown: service multiplier of the straggling replica
            (replica 0, covering the crowd window).
        seed: arrival/service RNG seed (shared by every rung).
        tracer: optional tracer observing the ``trace_policy`` rung only.
        metrics: optional registry every rung records into, labelled
            ``policy=<name>``.
        trace_policy: which ladder rung the ``tracer`` observes.
        engine: DES engine for every rung (``reference`` or
            ``vectorized``); results are bit-identical across engines.
    """
    if not 0.0 < base_utilization < 1.0:
        raise ValueError("base_utilization must be in (0, 1)")
    if crowd_multiplier <= 1.0:
        raise ValueError("crowd_multiplier must exceed 1")
    base_service_s = (
        TimingModel(server).model_latency(config, batch_size).total_seconds
    )
    capacity_qps = num_machines / base_service_s
    sla = SLA(deadline_s=sla_deadline_factor * base_service_s, percentile=0.99)

    # One seeded flash-crowd trace shared by every rung: a compressed
    # diurnal cycle with a spike riding its peak, sized so the spike
    # offers ~crowd_multiplier x capacity.
    crowd = LoadSpike(
        start_s=0.35 * duration_s,
        duration_s=0.3 * duration_s,
        multiplier=crowd_multiplier / base_utilization,
    )
    arrivals = DiurnalLoadGenerator(
        mean_qps=base_utilization * capacity_qps,
        amplitude=diurnal_amplitude,
        period_s=duration_s,
        spikes=(crowd,),
        seed=seed,
    ).generate(duration_s)
    arrival_times_s = [q.arrival_s for q in arrivals]

    # The same straggler stresses every rung through the crowd window —
    # the breaker rungs cut it out, the others keep feeding it.
    storm = FaultSchedule(
        stragglers=(
            Straggler(
                replica_id=0,
                start_s=crowd.start_s,
                duration_s=crowd.duration_s,
                slowdown=straggler_slowdown,
            ),
        )
    )

    outcomes: dict[str, OverloadOutcome] = {}
    for name, (policy, overload) in _ladder(
        base_service_s,
        config,
        sla.deadline_s,
        queue_capacity,
        brownout_lookup_caps,
    ).items():
        router = ResilientRouter(
            server,
            config,
            batch_size,
            num_machines,
            policy=policy,
            overload=overload,
            seed=seed,
            tracer=tracer if name == trace_policy else None,
            metrics=metrics,
            metrics_labels={"policy": name},
            engine=engine,
        )
        result = router.run(
            offered_qps=capacity_qps,  # nominal; the trace sets the rate
            duration_s=duration_s,
            faults=storm,
            sla=sla,
            arrival_times_s=arrival_times_s,
        )
        outcomes[name] = OverloadOutcome(
            policy_name=name,
            summary=result.summary(),
            stats=result.stats(),
            overload=result.overload,
            brownout_quality=result.brownout_quality,
        )
    return Figure11yResult(
        server_name=server.name,
        model_name=config.name,
        num_machines=num_machines,
        capacity_qps=capacity_qps,
        offered=len(arrival_times_s),
        duration_s=duration_s,
        sla_deadline_s=sla.deadline_s,
        crowd_multiplier=crowd_multiplier,
        outcomes=outcomes,
    )


def render(result: Figure11yResult) -> str:
    """Text rendering of the Figure 11y comparison."""
    rows = []
    for name in POLICY_LADDER:
        outcome = result.outcomes[name]
        stats = outcome.stats
        summary = outcome.summary
        ovl = outcome.overload
        rows.append(
            [
                name,
                f"{summary.p50 * 1e3:.2f}",
                f"{summary.p99 * 1e3:.2f}",
                f"{stats.goodput_qps:.0f}",
                f"{100 * result.goodput_fraction(name):.0f}",
                ovl.shed if ovl is not None else 0,
                ovl.breaker_opens if ovl is not None else 0,
                ovl.max_brownout_tier if ovl is not None else 0,
            ]
        )
    header = (
        f"Figure 11y: {result.model_name} x{result.num_machines} on "
        f"{result.server_name}, {result.offered} arrivals in "
        f"{result.duration_s:.1f} s ({result.crowd_multiplier:.0f}x flash "
        f"crowd over {result.capacity_qps:.0f} qps capacity); SLA deadline "
        f"{result.sla_deadline_s * 1e3:.2f} ms"
    )
    table = format_table(
        [
            "policy", "p50 ms", "p99 ms", "goodput qps", "% capacity",
            "shed", "breaker opens", "max tier",
        ],
        rows,
        title=header,
    )
    lines = [table]
    full = result.outcomes[POLICY_LADDER[-1]]
    if full.brownout_quality:
        for tier, quality in enumerate(full.brownout_quality, start=1):
            lines.append(
                f"brownout tier {tier} quality: "
                f"recall@k {quality['recall_at_k']:.3f}, "
                f"NDCG@k {quality['ndcg_at_k']:.3f}"
            )
    lines.append(
        f"full stack vs none: p99 /{result.p99_ratio():.1f}, "
        f"goodput {100 * result.goodput_fraction(POLICY_LADDER[-1]):.0f}% "
        "of capacity"
    )
    return "\n".join(lines)
