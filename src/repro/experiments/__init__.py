"""Experiment modules: one per paper figure/table, each with run()/render().

The registry maps experiment ids (as used in DESIGN.md / EXPERIMENTS.md) to
their modules, so harnesses can enumerate and regenerate everything:

    from repro.experiments import REGISTRY
    for exp_id, module in REGISTRY.items():
        print(module.render(module.run()))
"""

from . import (
    config_space,
    fig01_cycles,
    fig02_flops_bytes,
    fig04_operator_cycles,
    fig05_intensity_mpki,
    fig07_single_model,
    fig08_batch_sweep,
    fig09_colocation,
    fig10_latency_throughput,
    fig11_tail_latency,
    fig11x_faults,
    fig11y_overload,
    fig11z_domains,
    fig12_ncf_comparison,
    fig14_trace_locality,
    figmm_multimodel,
    fignmp_near_memory,
    fleet_day,
    micro_takeaways,
    table1_model_params,
    table2_servers,
    table3_bottlenecks,
    whatif_memory,
)

REGISTRY = {
    "figure1": fig01_cycles,
    "figure2": fig02_flops_bytes,
    "figure4": fig04_operator_cycles,
    "figure5": fig05_intensity_mpki,
    "figure7": fig07_single_model,
    "figure8": fig08_batch_sweep,
    "figure9": fig09_colocation,
    "figure10": fig10_latency_throughput,
    "figure11": fig11_tail_latency,
    "figure11x": fig11x_faults,
    "figure11y": fig11y_overload,
    "figure11z": fig11z_domains,
    "figure12": fig12_ncf_comparison,
    "figure14": fig14_trace_locality,
    "multimodel": figmm_multimodel,
    "fignmp": fignmp_near_memory,
    "fleet": fleet_day,
    "table1": table1_model_params,
    "table2": table2_servers,
    "table3": table3_bottlenecks,
    "micro": micro_takeaways,
    "configspace": config_space,
    "whatif": whatif_memory,
}

__all__ = ["REGISTRY"] + [name for name in REGISTRY]
