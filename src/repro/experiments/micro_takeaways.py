"""Section V/VI micro-measurements: SIMD scaling and hyperthreading.

Two quantitative claims that don't belong to a numbered figure:

* SIMD throughput on Skylake (packed 512-bit fp instructions retired per
  unit time) is 2.9x higher at batch 4 (74% of theoretical) and 14.5x at
  batch 16 (91% of theoretical) relative to unit batch.
* Enabling hyperthreading degrades FC run-time by ~1.6x and SLS by ~1.3x:
  the SIMD ports are time-shared, so compute-intensive models (RMC3)
  suffer most.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC2_SMALL, RMC3_SMALL
from ..hw.colocation import ColocationState
from ..hw.simd import packed_simd_fraction_of_theoretical, packed_simd_throughput_ratio
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class SimdScalingRow:
    """Packed-SIMD throughput at one batch size vs unit batch."""

    batch_size: int
    throughput_ratio: float
    fraction_of_theoretical: float


@dataclass(frozen=True)
class HyperthreadingRow:
    """Operator-type degradation from enabling hyperthreading."""

    model_name: str
    fc_degradation: float
    sls_degradation: float
    total_degradation: float


@dataclass(frozen=True)
class MicroTakeawaysResult:
    """Both micro-experiments."""

    simd_scaling: list[SimdScalingRow]
    hyperthreading: list[HyperthreadingRow]


def run(
    server: ServerSpec = BROADWELL,
    configs: list[ModelConfig] | None = None,
    batch_size: int = 32,
) -> MicroTakeawaysResult:
    """Measure SIMD scaling and hyperthreading degradation."""
    configs = configs or [RMC2_SMALL, RMC3_SMALL]
    simd = [
        SimdScalingRow(
            batch_size=b,
            throughput_ratio=packed_simd_throughput_ratio(b),
            fraction_of_theoretical=packed_simd_fraction_of_theoretical(b),
        )
        for b in (1, 4, 16)
    ]
    timing = TimingModel(server)
    ht_rows = []
    for config in configs:
        plain = timing.model_latency(config, batch_size)
        ht = timing.model_latency(
            config, batch_size, ColocationState(num_jobs=1, hyperthreading=True)
        )
        plain_ops = plain.seconds_by_op_type()
        ht_ops = ht.seconds_by_op_type()
        ht_rows.append(
            HyperthreadingRow(
                model_name=config.name,
                fc_degradation=ht_ops["FC"] / plain_ops["FC"],
                sls_degradation=ht_ops["SLS"] / plain_ops["SLS"],
                total_degradation=ht.total_seconds / plain.total_seconds,
            )
        )
    return MicroTakeawaysResult(simd_scaling=simd, hyperthreading=ht_rows)


def render(result: MicroTakeawaysResult) -> str:
    """Text rendering of the micro-measurements."""
    simd_table = format_table(
        ["batch", "SIMD throughput vs b=1", "% of theoretical"],
        [
            [r.batch_size, f"{r.throughput_ratio:.1f}x",
             f"{100 * r.fraction_of_theoretical:.0f}%"]
            for r in result.simd_scaling
        ],
        title="Packed-SIMD throughput scaling (Skylake, Section V)",
    )
    ht_table = format_table(
        ["model", "FC", "SLS", "total"],
        [
            [r.model_name, f"{r.fc_degradation:.2f}x", f"{r.sls_degradation:.2f}x",
             f"{r.total_degradation:.2f}x"]
            for r in result.hyperthreading
        ],
        title="Hyperthreading degradation (Section VI)",
    )
    return f"{simd_table}\n\n{ht_table}"
