"""Figure 9: per-model latency degradation under co-location (Broadwell).

Paper, batch 32, N co-located instances of the same model: at N=8 latency
degrades 1.3x (RMC1), 2.6x (RMC2) and 1.6x (RMC3). RMC2's degradation is
driven by SLS (3x) and FC (1.6x); RMC1's SLS time share grows from ~15% to
~35% while its FCs stay essentially unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import ModelLatency, TimingModel

DEFAULT_JOBS = (1, 2, 4, 8)


@dataclass(frozen=True)
class ColocationCell:
    """Latency of one model at one co-location degree."""

    model_name: str
    num_jobs: int
    latency: ModelLatency


@dataclass(frozen=True)
class Figure9Result:
    """The co-location degradation grid."""

    server_name: str
    batch_size: int
    cells: list[ColocationCell]

    def latency(self, model: str, num_jobs: int) -> ModelLatency:
        """The ModelLatency of one grid cell."""
        for cell in self.cells:
            if cell.model_name == model and cell.num_jobs == num_jobs:
                return cell.latency
        raise KeyError(f"no cell ({model}, {num_jobs})")

    def degradation(self, model: str, num_jobs: int) -> float:
        """Latency at ``num_jobs`` relative to running alone."""
        return (
            self.latency(model, num_jobs).total_seconds
            / self.latency(model, 1).total_seconds
        )

    def op_degradation(self, model: str, num_jobs: int, op_type: str) -> float:
        """Per-operator-type degradation relative to running alone."""
        alone = self.latency(model, 1).seconds_by_op_type()[op_type]
        loaded = self.latency(model, num_jobs).seconds_by_op_type()[op_type]
        return loaded / alone

    def sls_share(self, model: str, num_jobs: int) -> float:
        """SLS share of total time at a co-location degree."""
        return self.latency(model, num_jobs).fraction_by_op_type().get("SLS", 0.0)


def run(
    server: ServerSpec = BROADWELL,
    configs: list[ModelConfig] | None = None,
    batch_size: int = 32,
    jobs: tuple[int, ...] = DEFAULT_JOBS,
) -> Figure9Result:
    """Sweep homogeneous co-location degree per model class."""
    configs = configs or [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL]
    timing = TimingModel(server)
    cells = []
    for config in configs:
        for n in jobs:
            state = timing.colocation_state(config, batch_size, n)
            cells.append(
                ColocationCell(
                    model_name=config.name,
                    num_jobs=n,
                    latency=timing.model_latency(config, batch_size, state),
                )
            )
    return Figure9Result(server_name=server.name, batch_size=batch_size, cells=cells)


def render(result: Figure9Result) -> str:
    """Text rendering of Figure 9."""
    models = sorted({c.model_name for c in result.cells})
    jobs = sorted({c.num_jobs for c in result.cells})
    rows = []
    for model in models:
        for n in jobs:
            latency = result.latency(model, n)
            frac = latency.fraction_by_op_type()
            rows.append(
                [
                    model,
                    n,
                    f"{latency.total_seconds * 1e3:.2f}",
                    f"{result.degradation(model, n):.2f}x",
                    f"{100 * frac.get('FC', 0):.0f}",
                    f"{100 * frac.get('SLS', 0):.0f}",
                ]
            )
    return format_table(
        ["model", "N", "latency ms", "vs alone", "FC %", "SLS %"],
        rows,
        title=(
            f"Figure 9: co-location degradation on {result.server_name} "
            f"(batch {result.batch_size})"
        ),
    )
