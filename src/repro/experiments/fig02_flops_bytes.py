"""Figure 2: compute (FLOPs) vs memory (bytes read) per inference.

Paper: production recommendation models occupy a distinct region of the
FLOPs/bytes plane — far more bytes per inference than MLPerf-NCF (orders of
magnitude larger embedding work) and far lower compute density than CNNs,
with RNNs in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import NCF, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..core.workload_stats import WorkloadPoint, figure2_points


@dataclass(frozen=True)
class Figure2Result:
    """The comparison set of workload points."""

    points: list[WorkloadPoint]

    def by_name(self) -> dict[str, WorkloadPoint]:
        """Index the points by workload name."""
        return {p.name: p for p in self.points}


def run(configs: list[ModelConfig] | None = None) -> Figure2Result:
    """Characterize the Figure-2 workload set (RMCs + NCF + CNN + RNN)."""
    configs = configs or [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL, NCF]
    return Figure2Result(points=figure2_points(configs))


def render(result: Figure2Result) -> str:
    """Text rendering of Figure 2."""
    rows = [
        [
            p.name,
            p.category,
            f"{p.flops / 1e6:.3f}",
            f"{p.bytes_read / 1e6:.3f}",
            f"{p.operational_intensity:.2f}",
            f"{p.storage_bytes / 1e6:.1f}",
        ]
        for p in result.points
    ]
    return format_table(
        ["workload", "category", "MFLOPs/inf", "MB read/inf", "FLOPs/B", "storage MB"],
        rows,
        title="Figure 2: per-inference compute and memory requirements",
    )
