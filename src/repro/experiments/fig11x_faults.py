"""Figure 11x (extension): tail latency and goodput under a fault storm.

The paper's Figure 11 shows how co-location alone multiplies an FC
operator's p99. Production fleets add a second tail source the paper only
hints at (Section VI): replica crashes, stragglers and noisy neighbours.
This experiment subjects one replicated model to a *seeded fault storm*
(:func:`repro.serving.faults.fault_storm`) and climbs the resilience-policy
ladder —

1. ``none`` — the pre-fault serving stack: no timeouts, no retries;
2. ``retry`` — per-attempt timeout with bounded exponential-backoff
   retries and health-checked replica ejection;
3. ``retry+hedge`` — plus hedged requests ("The Tail at Scale"): a
   duplicate to a second replica after a short delay, first response wins;
4. ``retry+hedge+degrade`` — plus graceful degradation: truncated sparse
   lookups under overload or partial failure, quality cost reported.

Every policy replays the *same* storm against the *same* arrival stream
(identical seeds), so differences in p50/p99/p999, availability and
goodput are attributable to the policy alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.distributions import LatencySummary
from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer
from ..serving.faults import (
    DegradationPolicy,
    FaultSchedule,
    ResiliencePolicy,
    ResilientRouter,
    fault_storm,
)
from ..serving.metrics import SLA, ResilienceStats

#: Policy ladder order (render order and comparison anchors).
POLICY_LADDER = ("none", "retry", "retry+hedge", "retry+hedge+degrade")


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's showing under the storm."""

    policy_name: str
    summary: LatencySummary
    stats: ResilienceStats
    quality: dict[str, float] | None


@dataclass(frozen=True)
class Figure11xResult:
    """Per-policy outcomes under one seeded fault storm."""

    server_name: str
    model_name: str
    num_machines: int
    offered_qps: float
    duration_s: float
    sla_deadline_s: float
    storm: FaultSchedule
    outcomes: dict[str, PolicyOutcome]

    def p999_reduction(
        self, baseline: str = "none", policy: str = "retry+hedge"
    ) -> float:
        """p999 latency of ``baseline`` over ``policy`` (>1 = policy wins)."""
        return (
            self.outcomes[baseline].summary.p999
            / self.outcomes[policy].summary.p999
        )

    def goodput_gain(
        self, baseline: str = "none", policy: str = "retry+hedge"
    ) -> float:
        """Goodput of ``policy`` over ``baseline`` (>1 = policy wins)."""
        return (
            self.outcomes[policy].stats.goodput_qps
            / self.outcomes[baseline].stats.goodput_qps
        )


def _policies(
    base_service_s: float, degraded_lookups: int
) -> dict[str, tuple[ResiliencePolicy, DegradationPolicy | None]]:
    """The ladder, scaled to the model's fault-free service time."""
    # Timeout sits well above queueing latency at moderate load: tighter
    # timeouts (e.g. 20x service) cancel work that was about to finish and
    # feed a metastable retry storm under straggler faults. The hedge fires
    # around the fault-free p99 — late enough to stay rare, early enough to
    # beat a straggler's 6-12x service inflation.
    retry = ResiliencePolicy(
        timeout_s=30.0 * base_service_s,
        max_retries=2,
        backoff_base_s=base_service_s,
        health_check_interval_s=50.0 * base_service_s,
    )
    hedge = ResiliencePolicy(
        timeout_s=30.0 * base_service_s,
        max_retries=2,
        backoff_base_s=base_service_s,
        hedge_delay_s=6.0 * base_service_s,
        health_check_interval_s=50.0 * base_service_s,
    )
    # min_healthy_fraction just above (n-1)/n so losing even one replica
    # flips the service into degraded mode until it returns.
    degrade = DegradationPolicy(
        max_lookups_per_table=degraded_lookups,
        queue_depth_trigger=3.0,
        min_healthy_fraction=0.95,
    )
    return {
        "none": (ResiliencePolicy.none(), None),
        "retry": (retry, None),
        "retry+hedge": (hedge, None),
        "retry+hedge+degrade": (hedge, degrade),
    }


def run(
    server: ServerSpec = BROADWELL,
    config: ModelConfig = RMC1_SMALL,
    batch_size: int = 8,
    num_machines: int = 8,
    utilization: float = 0.6,
    duration_s: float = 2.0,
    sla_deadline_factor: float = 10.0,
    degraded_lookups: int = 4,
    storm: FaultSchedule | None = None,
    seed: int = 11,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace_policy: str = "retry+hedge",
    engine: str = "reference",
) -> Figure11xResult:
    """Replay one seeded fault storm against the resilience-policy ladder.

    Args:
        server / config / batch_size: the replicated service.
        num_machines: replica count behind the router.
        utilization: offered load as a fraction of fault-free capacity.
        duration_s: simulated horizon.
        sla_deadline_factor: SLA deadline as a multiple of the fault-free
            service time (the paper's SLAs sit an order of magnitude above
            the unloaded latency).
        degraded_lookups: per-table sparse-lookup cap in degraded mode.
        storm: explicit fault schedule; default draws a storm of crashes,
            stragglers and a bandwidth dip from ``seed + 1``.
        seed: arrival/service RNG seed (shared by every policy).
        tracer: optional :class:`~repro.obs.tracer.Tracer` that records the
            ``trace_policy`` ladder rung's run (one rung only, so the
            exported timeline stays readable). The default nil tracer
            records nothing and the run is bit-identical.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry` every
            rung records into, labelled ``policy=<name>``.
        trace_policy: which ladder rung the ``tracer`` observes.
        engine: DES engine for every rung (``reference`` or
            ``vectorized``); results are bit-identical across engines.
    """
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in (0, 1)")
    base_service_s = (
        TimingModel(server).model_latency(config, batch_size).total_seconds
    )
    if storm is None:
        storm = fault_storm(
            num_machines,
            duration_s,
            seed=seed + 1,
            crash_count=2,
            straggler_count=2,
            straggler_slowdown=(6.0, 12.0),
            bandwidth_dip_count=1,
        )
    sla = SLA(deadline_s=sla_deadline_factor * base_service_s, percentile=0.99)
    probe = ResilientRouter(
        server, config, batch_size, num_machines, seed=seed, engine=engine
    )
    offered_qps = utilization * probe.max_stable_qps()

    outcomes: dict[str, PolicyOutcome] = {}
    for name, (policy, degradation) in _policies(
        base_service_s, degraded_lookups
    ).items():
        router = ResilientRouter(
            server,
            config,
            batch_size,
            num_machines,
            policy=policy,
            degradation=degradation,
            seed=seed,
            tracer=tracer if name == trace_policy else None,
            metrics=metrics,
            metrics_labels={"policy": name},
            engine=engine,
        )
        result = router.run(offered_qps, duration_s, faults=storm, sla=sla)
        outcomes[name] = PolicyOutcome(
            policy_name=name,
            summary=result.summary(),
            stats=result.stats(),
            quality=result.quality,
        )
    return Figure11xResult(
        server_name=server.name,
        model_name=config.name,
        num_machines=num_machines,
        offered_qps=offered_qps,
        duration_s=duration_s,
        sla_deadline_s=sla.deadline_s,
        storm=storm,
        outcomes=outcomes,
    )


def render(result: Figure11xResult) -> str:
    """Text rendering of the Figure 11x comparison."""
    rows = []
    for name in POLICY_LADDER:
        outcome = result.outcomes[name]
        stats = outcome.stats
        summary = outcome.summary
        rows.append(
            [
                name,
                f"{summary.p50 * 1e3:.2f}",
                f"{summary.p99 * 1e3:.2f}",
                f"{summary.p999 * 1e3:.2f}",
                f"{100 * stats.availability:.2f}",
                f"{stats.goodput_qps:.0f}",
                stats.retries,
                stats.hedges,
                f"{100 * stats.degraded_fraction:.0f}",
            ]
        )
    storm = result.storm
    header = (
        f"Figure 11x: {result.model_name} x{result.num_machines} on "
        f"{result.server_name}, {result.offered_qps:.0f} qps offered for "
        f"{result.duration_s:.1f} s under a storm of {len(storm.crashes)} "
        f"crash(es), {len(storm.stragglers)} straggler(s), "
        f"{len(storm.bandwidth_faults)} bandwidth dip(s); "
        f"SLA deadline {result.sla_deadline_s * 1e3:.2f} ms"
    )
    table = format_table(
        [
            "policy", "p50 ms", "p99 ms", "p999 ms", "avail %",
            "goodput qps", "retries", "hedges", "degraded %",
        ],
        rows,
        title=header,
    )
    lines = [table]
    degraded = result.outcomes.get("retry+hedge+degrade")
    if degraded is not None and degraded.quality is not None:
        lines.append(
            "degraded-mode quality: "
            f"recall@k {degraded.quality['recall_at_k']:.3f}, "
            f"NDCG@k {degraded.quality['ndcg_at_k']:.3f}"
        )
    lines.append(
        f"retry+hedge vs none: p999 /{result.p999_reduction():.2f}, "
        f"goodput x{result.goodput_gain():.3f}"
    )
    return "\n".join(lines)
