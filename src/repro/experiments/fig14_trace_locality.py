"""Figure 14: unique sparse-ID fraction across production traces.

Paper: the percentage of unique sparse IDs (embedding-table lookups) varies
widely across ten production use cases — from near-random to heavily
reusing — enabling intelligent caching and prefetching. We regenerate the
spread with synthetic traces and additionally quantify the caching
opportunity: LLC MPKI of an SLS replaying each trace through the simulated
Broadwell hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.mpki import measure_sls_trace_mpki
from ..analysis.tables import format_table
from ..core.operators import EmbeddingTable, SparseLengthsSum
from ..data.traces import EmbeddingTrace, random_trace, synthetic_production_traces
from ..hw.server import BROADWELL, ServerSpec
from ..obs.tracer import Tracer


@dataclass(frozen=True)
class TraceLocalityRow:
    """One trace's locality and cache behaviour."""

    name: str
    unique_fraction: float
    llc_mpki: float


@dataclass(frozen=True)
class Figure14Result:
    """Per-trace locality measurements."""

    rows: list[TraceLocalityRow]

    def unique_fractions(self) -> dict[str, float]:
        """Unique-ID fraction per trace name."""
        return {r.name: r.unique_fraction for r in self.rows}


def run(
    server: ServerSpec = BROADWELL,
    table_rows: int = 1_000_000,
    trace_length: int = 30_000,
    seed: int = 2020,
    engine: str = "vectorized",
    tracer: Tracer | None = None,
) -> Figure14Result:
    """Generate the trace suite and measure locality + cache behaviour.

    With a ``tracer``, each trace's replay is recorded as ``hw.replay.*``
    spans on its own track, so ``python -m repro trace figure14`` renders
    the per-trace cache-level waterfall. Tracing off is bit-identical.
    """
    traces: list[EmbeddingTrace] = [random_trace(table_rows, trace_length)]
    traces.extend(
        synthetic_production_traces(table_rows, trace_length, seed=seed)
    )
    table = EmbeddingTable(table_rows, 32)
    sls = SparseLengthsSum("sls", table, lookups_per_sample=80)
    rows = []
    for track, trace in enumerate(traces):
        if tracer is not None:
            tracer.set_track_name(track, trace.name)
        mpki = measure_sls_trace_mpki(
            sls, server, trace.ids, engine=engine, tracer=tracer, track=track
        )
        rows.append(
            TraceLocalityRow(
                name=trace.name,
                unique_fraction=trace.unique_fraction(),
                llc_mpki=mpki.mpki,
            )
        )
    return Figure14Result(rows=rows)


def render(result: Figure14Result) -> str:
    """Text rendering of Figure 14."""
    rows = [
        [r.name, f"{100 * r.unique_fraction:.1f}", f"{r.llc_mpki:.2f}"]
        for r in result.rows
    ]
    return format_table(
        ["trace", "unique IDs %", "LLC MPKI"],
        rows,
        title="Figure 14: sparse-ID locality across traces",
    )
