"""Figure 1: share of AI inference cycles by recommendation model class.

Paper: RMC1, RMC2 and RMC3 consume ~65% of AI inference cycles;
recommendation models in total comprise over 79%; the rest is
non-recommendation (CNNs, RNNs, other DNNs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_bar_chart
from ..serving.fleet import Fleet, production_fleet


@dataclass(frozen=True)
class Figure1Result:
    """Cycle shares by model class."""

    by_class: dict[str, float]
    recommendation_share: float
    rmc_core_share: float


def run(fleet: Fleet | None = None) -> Figure1Result:
    """Compute Figure 1 from the production fleet mix."""
    fleet = fleet or production_fleet()
    return Figure1Result(
        by_class=fleet.cycles_by_model_class(),
        recommendation_share=fleet.recommendation_share(),
        rmc_core_share=fleet.rmc_core_share(),
    )


def render(result: Figure1Result) -> str:
    """Text rendering of Figure 1."""
    labels = list(result.by_class)
    values = [100 * result.by_class[k] for k in labels]
    chart = format_bar_chart(
        labels, values, title="Figure 1: AI inference cycles by model class", unit="%"
    )
    footer = (
        f"RMC1+RMC2+RMC3 = {100 * result.rmc_core_share:.0f}% "
        f"(paper: 65%), all recommendation = "
        f"{100 * result.recommendation_share:.0f}% (paper: >=79%)"
    )
    return f"{chart}\n{footer}"
