"""Figure 8: latency vs batch size across server generations.

Paper: at batch 16, Broadwell beats Haswell/Skylake by 1.4x/1.5x (RMC1),
1.3x/1.4x (RMC2) and 1.32x/1.65x (RMC3); Skylake overtakes from batch ~64
for the compute-bound RMC3 and ~128 for the memory-bound RMC1/RMC2, thanks
to AVX-512 — the SLA line determines the largest usable batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import ALL_SERVERS, ServerSpec
from ..hw.timing import TimingModel

DEFAULT_BATCHES = (1, 4, 16, 64, 128, 256)


@dataclass(frozen=True)
class SweepCell:
    """One (model, server, batch) latency measurement."""

    model_name: str
    server_name: str
    batch_size: int
    latency_s: float


@dataclass(frozen=True)
class Figure8Result:
    """The full latency grid."""

    cells: list[SweepCell]

    def latency(self, model: str, server: str, batch: int) -> float:
        """Latency of one grid cell (seconds)."""
        for cell in self.cells:
            if (
                cell.model_name == model
                and cell.server_name == server
                and cell.batch_size == batch
            ):
                return cell.latency_s
        raise KeyError(f"no cell ({model}, {server}, {batch})")

    def best_server(self, model: str, batch: int) -> str:
        """Server with the lowest latency for (model, batch)."""
        candidates = [
            c for c in self.cells if c.model_name == model and c.batch_size == batch
        ]
        if not candidates:
            raise KeyError(f"no cells for ({model}, {batch})")
        return min(candidates, key=lambda c: c.latency_s).server_name


def run(
    configs: list[ModelConfig] | None = None,
    servers: tuple[ServerSpec, ...] = ALL_SERVERS,
    batches: tuple[int, ...] = DEFAULT_BATCHES,
) -> Figure8Result:
    """Sweep latency across models x servers x batch sizes."""
    configs = configs or [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL]
    cells = []
    for server in servers:
        timing = TimingModel(server)
        for config in configs:
            for batch in batches:
                cells.append(
                    SweepCell(
                        model_name=config.name,
                        server_name=server.name,
                        batch_size=batch,
                        latency_s=timing.model_latency(config, batch).total_seconds,
                    )
                )
    return Figure8Result(cells=cells)


def render(result: Figure8Result) -> str:
    """Text rendering of Figure 8."""
    models = sorted({c.model_name for c in result.cells})
    servers = sorted({c.server_name for c in result.cells})
    batches = sorted({c.batch_size for c in result.cells})
    sections = []
    for model in models:
        rows = []
        for batch in batches:
            row: list[object] = [batch]
            for server in servers:
                row.append(f"{result.latency(model, server, batch) * 1e3:.3f}")
            row.append(result.best_server(model, batch))
            rows.append(row)
        sections.append(
            format_table(
                ["batch"] + [f"{s} ms" for s in servers] + ["best"],
                rows,
                title=f"Figure 8: {model} latency vs batch and server",
            )
        )
    return "\n\n".join(sections)
