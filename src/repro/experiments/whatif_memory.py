"""What-if study: future memory systems for embedding-dominated models.

The paper concludes that "a combination of aggressive compression and
novel memory technologies are needed" for recommendation. This experiment
asks the forward-looking question its characterization enables: how much
does each plausible next-generation memory lever buy on RMC2?

Levers (applied to a Broadwell-class core so only the memory system moves):

* HBM-class bandwidth — 4x peak DRAM bandwidth, same latency;
* low-latency memory — 2x lower random-access latency, same bandwidth;
* both (an idealized on-package stack);
* int8 embeddings on the baseline memory (the compression lever).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC2_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class WhatIfRow:
    """One memory-system variant's outcome, alone and co-located."""

    variant: str
    latency_s: float
    speedup: float
    sls_share: float
    colocated_latency_s: float
    colocated_speedup: float


@dataclass(frozen=True)
class WhatIfResult:
    """All variants, baseline first."""

    model_name: str
    batch_size: int
    colocated_jobs: int
    rows: list[WhatIfRow]

    def by_variant(self) -> dict[str, WhatIfRow]:
        """Index rows by variant name."""
        return {r.variant: r for r in self.rows}


def run(
    config: ModelConfig = RMC2_SMALL,
    base: ServerSpec = BROADWELL,
    batch_size: int = 32,
    colocated_jobs: int = 12,
) -> WhatIfResult:
    """Evaluate the memory-lever variants on one model.

    Each variant is measured running alone (latency-bound regime, where
    lower access latency is the lever that pays) and under co-location
    (bandwidth-bound regime, where the HBM-class lever takes over).
    """
    hbm = dc_replace(
        base, name="Broadwell+HBM", dram_bw_bytes_per_s=base.dram_bw_bytes_per_s * 4
    )
    low_lat = dc_replace(
        base, name="Broadwell+LL", dram_random_ns=base.dram_random_ns / 2
    )
    both = dc_replace(
        base,
        name="Broadwell+HBM+LL",
        dram_bw_bytes_per_s=base.dram_bw_bytes_per_s * 4,
        dram_random_ns=base.dram_random_ns / 2,
    )
    int8_config = dc_replace(config, dtype="int8")

    variants: list[tuple[str, ServerSpec, ModelConfig]] = [
        ("baseline", base, config),
        ("4x bandwidth (HBM-class)", hbm, config),
        ("2x lower latency", low_lat, config),
        ("both", both, config),
        ("int8 embeddings", base, int8_config),
    ]
    baseline_alone = None
    baseline_packed = None
    rows = []
    for name, server, cfg in variants:
        timing = TimingModel(server)
        alone = timing.model_latency(cfg, batch_size)
        state = timing.colocation_state(cfg, batch_size, colocated_jobs)
        packed = timing.model_latency(cfg, batch_size, state)
        if baseline_alone is None:
            baseline_alone = alone.total_seconds
            baseline_packed = packed.total_seconds
        rows.append(
            WhatIfRow(
                variant=name,
                latency_s=alone.total_seconds,
                speedup=baseline_alone / alone.total_seconds,
                sls_share=alone.fraction_by_op_type().get("SLS", 0.0),
                colocated_latency_s=packed.total_seconds,
                colocated_speedup=baseline_packed / packed.total_seconds,
            )
        )
    return WhatIfResult(
        model_name=config.name,
        batch_size=batch_size,
        colocated_jobs=colocated_jobs,
        rows=rows,
    )


def render(result: WhatIfResult) -> str:
    """Text rendering of the what-if table."""
    rows = [
        [
            r.variant,
            f"{r.latency_s * 1e3:.2f}",
            f"{r.speedup:.2f}x",
            f"{r.colocated_latency_s * 1e3:.2f}",
            f"{r.colocated_speedup:.2f}x",
        ]
        for r in result.rows
    ]
    return format_table(
        ["memory system", "alone ms", "speedup",
         f"N={result.colocated_jobs} ms", "speedup"],
        rows,
        title=(
            f"What-if: future memory for {result.model_name} "
            f"(batch {result.batch_size}; alone = latency-bound, "
            f"co-located = bandwidth-bound)"
        ),
    )
