"""figNMP: near-memory SLS (RecNMP) speedup across models and trace locality.

The paper's SLS-dominated classes are bound by irregular embedding gathers
(Figures 5/14); RecNMP (Ke et al., arXiv:1912.12953) moves the gather into
the DIMMs. This experiment composes the full trace-driven
:class:`~repro.memory.near_memory.NearMemorySystem` with the Figure 14
trace axis: for each model class (RMC1/RMC2/RMC3) and each locality trace,
every SLS operator replays its pooled lookups through the rank-parallel
engine while non-SLS operators keep their baseline cost. Three readouts per
cell: the engine's end-to-end speedup, the flat-factor
:func:`~repro.memory.near_memory.nmp_speedup` estimate (the Amdahl column —
blind to hot-row locality and rank skew, so the gap between the two columns
*is* the locality/contention effect), and the engine's hot-hit ratio and
rank imbalance that explain the gap.

The fleet projection weights each class's speedup (on a designated
production-like trace) by :func:`repro.serving.fleet.production_fleet`
cycle shares — the Figure 1 mix — to estimate the fraction of fleet AI
cycles a RecNMP deployment returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..core.graph import config_ops
from ..core.operators.base import OP_SLS
from ..data.traces import EmbeddingTrace, random_trace, synthetic_production_traces
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import OP_OVERHEAD_S, TimingModel
from ..memory.near_memory import (
    NearMemorySystem,
    NmpConfig,
    NmpGeometry,
    nmp_speedup,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..serving.fleet import production_fleet


@dataclass(frozen=True)
class NmpCell:
    """One (model, trace) cell of the sweep."""

    model_name: str
    trace_name: str
    unique_fraction: float
    sls_share: float
    baseline_seconds: float
    nmp_seconds: float
    amdahl_seconds: float
    hot_hit_ratio: float
    rank_imbalance: float

    @property
    def engine_speedup(self) -> float:
        """End-to-end speedup from the full trace-driven engine."""
        return self.baseline_seconds / self.nmp_seconds

    @property
    def amdahl_speedup(self) -> float:
        """End-to-end speedup from the flat-factor quick estimate."""
        return self.baseline_seconds / self.amdahl_seconds


@dataclass(frozen=True)
class FleetProjection:
    """Fleet-wide effect of deploying NMP under the Figure 1 cycle mix."""

    class_shares: dict[str, float]
    class_speedups: dict[str, float]
    projection_trace: str

    @property
    def fleet_speedup(self) -> float:
        """Fleet cycle speedup; classes without NMP keep speedup 1."""
        remaining = sum(
            share / self.class_speedups.get(model_class, 1.0)
            for model_class, share in self.class_shares.items()
        )
        return 1.0 / remaining

    @property
    def cycles_returned(self) -> float:
        """Fraction of fleet AI-inference cycles NMP hands back."""
        return 1.0 - 1.0 / self.fleet_speedup


@dataclass(frozen=True)
class FigNmpResult:
    """Near-memory speedups across the model × trace-locality grid."""

    server_name: str
    batch_size: int
    geometry: NmpGeometry
    cells: list[NmpCell]
    fleet: FleetProjection

    def cell(self, model_name: str, trace_name: str) -> NmpCell:
        """Look up one sweep cell."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.trace_name == trace_name:
                return cell
        raise KeyError(f"no cell for ({model_name!r}, {trace_name!r})")

    def model_names(self) -> list[str]:
        """Model classes in sweep order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.model_name not in seen:
                seen.append(cell.model_name)
        return seen

    def trace_names(self) -> list[str]:
        """Traces in sweep order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.trace_name not in seen:
                seen.append(cell.trace_name)
        return seen


def _cell_traces(
    table_rows: int, trace_length: int, seed: int
) -> list[EmbeddingTrace]:
    """The Figure 14 axis: the random baseline plus the synthetic suite."""
    traces = [random_trace(table_rows, trace_length)]
    traces.extend(synthetic_production_traces(table_rows, trace_length, seed=seed))
    return traces


def _replay_model(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    trace: EmbeddingTrace,
    geometry: NmpGeometry,
    engine: str,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    track: int,
) -> NmpCell:
    """Price one model on one trace: engine vs Amdahl vs baseline."""
    baseline = TimingModel(server).model_latency(config, batch_size)
    system = NearMemorySystem(
        geometry, engine=engine, tracer=tracer, metrics=metrics, track=track
    )
    nmp_seconds = 0.0
    hits = 0
    lookups = 0
    rank_busy_ns = np.zeros(geometry.num_ranks, dtype=np.int64)
    cursor = 0
    ids = trace.ids
    for spec, op in zip(config_ops(config), baseline.per_op):
        if spec.op_type != OP_SLS:
            nmp_seconds += op.seconds
            continue
        count = batch_size * spec.lookups_per_sample
        # Walk the trace cyclically so every operator sees its locality.
        rows = np.take(
            ids, np.arange(cursor, cursor + count, dtype=np.int64), mode="wrap"
        )
        cursor = (cursor + count) % ids.size
        lengths = np.full(batch_size, spec.lookups_per_sample, dtype=np.int64)
        result = system.replay(rows, lengths)
        nmp_seconds += result.elapsed_s + OP_OVERHEAD_S
        hits += result.hot_hits
        lookups += result.num_lookups
        rank_busy_ns += result.per_rank_busy_ns
    amdahl = nmp_speedup(
        server,
        config,
        batch_size,
        NmpConfig.from_geometry(server, geometry, config, batch_size),
    )
    mean_busy = float(rank_busy_ns.mean()) if rank_busy_ns.size else 0.0
    return NmpCell(
        model_name=config.name,
        trace_name=trace.name,
        unique_fraction=trace.unique_fraction(),
        sls_share=baseline.fraction_by_op_type().get("SLS", 0.0),
        baseline_seconds=baseline.total_seconds,
        nmp_seconds=nmp_seconds,
        amdahl_seconds=amdahl.accelerated_seconds,
        hot_hit_ratio=hits / lookups if lookups else 0.0,
        rank_imbalance=(
            float(rank_busy_ns.max()) / mean_busy if mean_busy > 0.0 else 1.0
        ),
    )


def run(
    server: ServerSpec = BROADWELL,
    configs: tuple[ModelConfig, ...] = (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL),
    batch_size: int = 16,
    geometry: NmpGeometry = NmpGeometry(),
    table_rows: int = 200_000,
    trace_length: int = 30_000,
    seed: int = 2020,
    projection_trace: str = "trace-6",
    engine: str = "vectorized",
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> FigNmpResult:
    """Sweep model classes × Figure 14 traces through the NMP engine.

    Each cell replays every SLS operator's pooled lookups (batch ×
    lookups-per-sample, walked cyclically through the trace) on a fresh
    :class:`~repro.memory.near_memory.NearMemorySystem`; non-SLS operators
    keep their host cost. ``projection_trace`` names the trace whose
    per-class speedups feed the fleet projection. With a ``tracer``, each
    cell's replays land on their own track; tracing and metrics are
    observational only — results are bit-identical with them off.
    """
    traces = _cell_traces(table_rows, trace_length, seed)
    trace_names = [trace.name for trace in traces]
    if projection_trace not in trace_names:
        raise ValueError(
            f"projection_trace {projection_trace!r} not in {trace_names}"
        )
    cells: list[NmpCell] = []
    track = 0
    for config in configs:
        for trace in traces:
            if tracer is not None:
                tracer.set_track_name(track, f"{config.name}/{trace.name}")
            cells.append(
                _replay_model(
                    server,
                    config,
                    batch_size,
                    trace,
                    geometry,
                    engine,
                    tracer,
                    metrics,
                    track,
                )
            )
            track += 1
    class_speedups = {
        config.name.split("-")[0]: cell.engine_speedup
        for config in configs
        for cell in cells
        if cell.model_name == config.name and cell.trace_name == projection_trace
    }
    fleet = FleetProjection(
        class_shares=production_fleet().cycles_by_model_class(),
        class_speedups=class_speedups,
        projection_trace=projection_trace,
    )
    return FigNmpResult(
        server_name=server.name,
        batch_size=batch_size,
        geometry=geometry,
        cells=cells,
        fleet=fleet,
    )


def render(result: FigNmpResult) -> str:
    """Text rendering of the sweep plus the fleet projection."""
    rows = [
        [
            cell.model_name,
            cell.trace_name,
            f"{100 * cell.unique_fraction:.1f}",
            f"{100 * cell.sls_share:.1f}",
            f"{100 * cell.hot_hit_ratio:.1f}",
            f"{cell.rank_imbalance:.2f}",
            f"{cell.engine_speedup:.2f}x",
            f"{cell.amdahl_speedup:.2f}x",
        ]
        for cell in result.cells
    ]
    table = format_table(
        [
            "model",
            "trace",
            "unique %",
            "SLS %",
            "hot-hit %",
            "imbalance",
            "engine",
            "Amdahl",
        ],
        rows,
        title=(
            f"figNMP: RecNMP speedup on {result.server_name}, "
            f"batch {result.batch_size}, {result.geometry.num_ranks} ranks"
        ),
    )
    fleet = result.fleet
    lines = [table, ""]
    lines.append(
        f"Fleet projection (speedups from {fleet.projection_trace}, "
        "Figure 1 cycle mix):"
    )
    for model_class in sorted(fleet.class_shares):
        share = fleet.class_shares[model_class]
        speedup = fleet.class_speedups.get(model_class)
        note = f"{speedup:.2f}x" if speedup is not None else "1.00x (no NMP)"
        lines.append(f"  {model_class:<8} {100 * share:4.1f}% of cycles  {note}")
    lines.append(
        f"  fleet speedup {fleet.fleet_speedup:.3f}x — returns "
        f"{100 * fleet.cycles_returned:.1f}% of AI-inference cycles"
    )
    return "\n".join(lines)
