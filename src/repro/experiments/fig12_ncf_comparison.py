"""Figure 12: production RMC models vs the MLPerf-NCF public benchmark.

Paper: production models have orders-of-magnitude longer inference latency,
larger embedding tables and more FC parameters than MLPerf-NCF; NCF spends
>90% of its time in FC while batched RMC1/RMC2 spend ~80% in SLS — which is
why NCF-derived insights do not transfer to production recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import NCF, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class NcfComparisonRow:
    """One model's Figure-12 metrics, normalized to NCF."""

    name: str
    latency_s: float
    embedding_bytes: int
    fc_parameters: int
    latency_vs_ncf: float
    embedding_vs_ncf: float
    fc_params_vs_ncf: float
    fc_time_share: float
    sls_time_share: float


@dataclass(frozen=True)
class Figure12Result:
    """The normalized comparison table."""

    rows: list[NcfComparisonRow]

    def by_name(self) -> dict[str, NcfComparisonRow]:
        """Index rows by model name."""
        return {r.name: r for r in self.rows}


def run(
    server: ServerSpec = BROADWELL,
    configs: list[ModelConfig] | None = None,
    batch_size: int = 16,
) -> Figure12Result:
    """Compare RMC presets against MLPerf-NCF, normalized to NCF."""
    configs = configs or [NCF, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL]
    if not any(c.model_class == "NCF" for c in configs):
        raise ValueError("comparison set must include an NCF config")
    timing = TimingModel(server)

    metrics = {}
    for config in configs:
        latency = timing.model_latency(config, batch_size)
        frac = latency.fraction_by_op_type()
        metrics[config.name] = (
            latency.total_seconds,
            config.embedding_storage_bytes(),
            config.mlp_parameter_count(),
            frac.get("FC", 0.0),
            frac.get("SLS", 0.0),
        )
    ncf_name = next(c.name for c in configs if c.model_class == "NCF")
    ncf = metrics[ncf_name]
    rows = [
        NcfComparisonRow(
            name=name,
            latency_s=m[0],
            embedding_bytes=m[1],
            fc_parameters=m[2],
            latency_vs_ncf=m[0] / ncf[0],
            embedding_vs_ncf=m[1] / ncf[1],
            fc_params_vs_ncf=m[2] / ncf[2],
            fc_time_share=m[3],
            sls_time_share=m[4],
        )
        for name, m in metrics.items()
    ]
    return Figure12Result(rows=rows)


def render(result: Figure12Result) -> str:
    """Text rendering of Figure 12."""
    rows = [
        [
            r.name,
            f"{r.latency_s * 1e3:.3f}",
            f"{r.latency_vs_ncf:.1f}x",
            f"{r.embedding_vs_ncf:.1f}x",
            f"{r.fc_params_vs_ncf:.1f}x",
            f"{100 * r.fc_time_share:.0f}",
            f"{100 * r.sls_time_share:.0f}",
        ]
        for r in result.rows
    ]
    return format_table(
        ["model", "latency ms", "vs NCF", "emb vs NCF", "FC params vs NCF",
         "FC %", "SLS %"],
        rows,
        title="Figure 12: production models vs MLPerf-NCF (batch 16)",
    )
