"""Figure 7: single-model inference latency and operator breakdown.

Paper, unit batch on Broadwell: RMC1 0.04 ms, RMC2 0.30 ms, RMC3 0.60 ms
(15x spread); BatchMatMul+FC are >96% of RMC3 but only ~61% of RMC1 (which
spends ~20% in SLS and ~6.5% in Concat), while SLS is ~80% of RMC2.
A large RMC1 instance is ~2x slower than a small one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_LARGE, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import ModelLatency, TimingModel


@dataclass(frozen=True)
class Figure7Result:
    """Batch-1 latency + operator breakdown per model class."""

    server_name: str
    latencies: dict[str, ModelLatency]

    def latency_ms(self, name: str) -> float:
        """Total latency of one model in milliseconds."""
        return self.latencies[name].total_seconds * 1e3

    def breakdown(self, name: str) -> dict[str, float]:
        """Operator time shares of one model."""
        return self.latencies[name].fraction_by_op_type()


def run(
    server: ServerSpec = BROADWELL,
    configs: list[ModelConfig] | None = None,
    batch_size: int = 1,
) -> Figure7Result:
    """Predict single-model latency and breakdown at unit batch."""
    configs = configs or [RMC1_SMALL, RMC1_LARGE, RMC2_SMALL, RMC3_SMALL]
    timing = TimingModel(server)
    return Figure7Result(
        server_name=server.name,
        latencies={c.name: timing.model_latency(c, batch_size) for c in configs},
    )


def render(result: Figure7Result) -> str:
    """Text rendering of Figure 7."""
    rows = []
    for name, latency in result.latencies.items():
        frac = latency.fraction_by_op_type()
        rows.append(
            [
                name,
                f"{latency.total_seconds * 1e3:.3f}",
                f"{100 * frac.get('FC', 0):.1f}",
                f"{100 * frac.get('SLS', 0):.1f}",
                f"{100 * frac.get('Concat', 0):.1f}",
                f"{100 * frac.get('Activation', 0):.1f}",
            ]
        )
    return format_table(
        ["model", "latency ms", "FC %", "SLS %", "Concat %", "Activ %"],
        rows,
        title=f"Figure 7: batch-1 latency and breakdown on {result.server_name}",
    )
