"""Figure 5: compute density (left) and LLC MPKI (right) per operator.

Paper, on Broadwell: SLS has ~0.25 FLOPs/byte vs RNN 5.5, FC 18, CNN 141;
and an LLC miss rate of ~8 MPKI (1-10 across configurations) vs RNN 0.5,
FC 0.2, CNN 0.06 — misses are compulsory (low row reuse), not capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.mpki import MpkiResult, measure_mpki, measure_sls_trace_mpki
from ..analysis.roofline import IntensityPoint, figure5_intensity_points
from ..analysis.tables import format_table
from ..core.operators import (
    Conv2D,
    EmbeddingTable,
    FullyConnected,
    RecurrentCell,
    SparseLengthsSum,
)
from ..data.sparse import TemporalReuseGenerator
from ..hw.server import BROADWELL, ServerSpec


@dataclass(frozen=True)
class Figure5Result:
    """Intensity and MPKI for the operator comparison set."""

    intensity: list[IntensityPoint]
    mpki: list[MpkiResult]

    def intensity_by_name(self) -> dict[str, float]:
        """Operational intensity per operator name."""
        return {p.name: p.operational_intensity for p in self.intensity}

    def mpki_by_name(self) -> dict[str, float]:
        """LLC MPKI per operator name."""
        return {m.name: m.mpki for m in self.mpki}


def run(
    server: ServerSpec = BROADWELL,
    trace_length: int = 20_000,
    iterations: int = 4,
    seed: int = 7,
    engine: str = "vectorized",
) -> Figure5Result:
    """Measure Figure 5 on a simulated ``server``.

    The SLS trace uses production-like locality (moderate temporal reuse —
    see Figure 14); FC/CNN/RNN run their natural streaming/reuse patterns
    through the same cache hierarchy. Operator shapes are moderated so the
    line-accurate Python cache simulation stays fast; the *ratios* are what
    Figure 5 is about.
    """
    rng = np.random.default_rng(seed)
    intensity = figure5_intensity_points()

    table = EmbeddingTable(1_000_000, 32)
    sls = SparseLengthsSum("SLS", table, lookups_per_sample=80)
    generator = TemporalReuseGenerator(table.rows, 1, reuse_probability=0.55)
    rows = generator.ids(trace_length, rng)
    mpki = [
        measure_sls_trace_mpki(sls, server, rows, engine=engine),
        measure_mpki(
            RecurrentCell("RNN", 256, 512, 8),
            server,
            batch_size=2,
            iterations=iterations,
            warmup=1,
            engine=engine,
        ),
        measure_mpki(
            FullyConnected("FC", 2048, 1000),
            server,
            batch_size=32,
            iterations=iterations,
            warmup=1,
            engine=engine,
        ),
        measure_mpki(
            Conv2D("CNN", 64, 64, 3, 56),
            server,
            batch_size=1,
            iterations=iterations,
            warmup=1,
            engine=engine,
        ),
    ]
    return Figure5Result(intensity=intensity, mpki=mpki)


def render(result: Figure5Result) -> str:
    """Text rendering of Figure 5."""
    intensity = result.intensity_by_name()
    mpki = result.mpki_by_name()
    paper_intensity = {"SLS": 0.25, "RNN": 5.5, "FC": 18.0, "CNN": 141.0}
    paper_mpki = {"SLS": 8.0, "RNN": 0.5, "FC": 0.2, "CNN": 0.06}
    rows = []
    for name in ("SLS", "RNN", "FC", "CNN"):
        rows.append(
            [
                name,
                f"{intensity[name]:.2f}",
                f"{paper_intensity[name]:.2f}",
                f"{mpki[name]:.2f}",
                f"{paper_mpki[name]:.2f}",
            ]
        )
    return format_table(
        ["operator", "FLOPs/B", "paper FLOPs/B", "LLC MPKI", "paper MPKI"],
        rows,
        title="Figure 5: operator compute density and LLC miss rates",
    )
