"""Table III: model classes and their micro-architectural bottlenecks.

Paper: dense-feature-dominated models (RMC1, RMC3) are MLP-dominated and
sensitive to core frequency/count, SIMD performance and cache size;
sparse-feature models (RMC1, RMC2) are embedding-dominated and sensitive to
DRAM frequency/bandwidth and cache contention. Rather than hard-coding the
table, this module derives each class's dominant operator and bottleneck
sensitivities from the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class BottleneckRow:
    """Derived bottleneck profile of one model class."""

    model_class: str
    dominant_operator: str
    frequency_sensitivity: float
    dram_sensitivity: float
    simd_class: str

    @property
    def classification(self) -> str:
        """"MLP dominated" or "Embedding dominated" (Table III wording)."""
        return (
            "Embedding dominated"
            if self.dominant_operator == "SLS"
            else "MLP dominated"
        )


@dataclass(frozen=True)
class Table3Result:
    """All derived rows."""

    rows: list[BottleneckRow]

    def by_class(self) -> dict[str, BottleneckRow]:
        """Index rows by model class."""
        return {r.model_class: r for r in self.rows}


def _sensitivity(base: float, perturbed: float) -> float:
    """Relative speedup from a 20% resource improvement, normalized to 1."""
    return base / perturbed


def run(
    server: ServerSpec = BROADWELL,
    configs: list[ModelConfig] | None = None,
    batch_size: int = 16,
) -> Table3Result:
    """Derive Table III by perturbing server resources by +20%."""
    configs = configs or [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL]
    faster_clock = replace(server, frequency_ghz=server.frequency_ghz * 1.2)
    faster_dram = replace(
        server,
        dram_bw_bytes_per_s=server.dram_bw_bytes_per_s * 1.2,
        dram_random_ns=server.dram_random_ns / 1.2,
    )
    rows = []
    for config in configs:
        base = TimingModel(server).model_latency(config, batch_size).total_seconds
        clock = TimingModel(faster_clock).model_latency(config, batch_size).total_seconds
        dram = TimingModel(faster_dram).model_latency(config, batch_size).total_seconds
        breakdown = (
            TimingModel(server).model_latency(config, batch_size).seconds_by_op_type()
        )
        dominant = max(breakdown, key=breakdown.get)
        rows.append(
            BottleneckRow(
                model_class=config.model_class,
                dominant_operator=dominant,
                frequency_sensitivity=_sensitivity(base, clock),
                dram_sensitivity=_sensitivity(base, dram),
                simd_class=server.simd.name,
            )
        )
    return Table3Result(rows=rows)


def render(result: Table3Result) -> str:
    """Text rendering of Table III."""
    rows = [
        [
            r.model_class,
            r.classification,
            r.dominant_operator,
            f"{r.frequency_sensitivity:.2f}x",
            f"{r.dram_sensitivity:.2f}x",
        ]
        for r in result.rows
    ]
    return format_table(
        ["model", "class", "dominant op", "+20% clock", "+20% DRAM"],
        rows,
        title="Table III: derived micro-architectural bottlenecks",
    )
