"""Table I: normalized architecture parameters of RMC1/RMC2/RMC3.

Paper normalization: Bottom/Top FC widths to RMC1's layer 3; table count,
input dim (rows) and output dim to RMC1; lookups per table to RMC3. RMC1
is small in both FCs and tables, RMC2 has ~10x the tables
(memory-intensive), RMC3 has ~10x wider FCs (compute-intensive).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.normalization import NormalizedModelParams, normalize_table1
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL


@dataclass(frozen=True)
class Table1Result:
    """Normalized Table-I rows."""

    rows: list[NormalizedModelParams]

    def by_class(self) -> dict[str, NormalizedModelParams]:
        """Index rows by model class."""
        return {r.model_class: r for r in self.rows}


def run(configs: list[ModelConfig] | None = None) -> Table1Result:
    """Compute the normalized Table I from the presets."""
    configs = configs or [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL]
    return Table1Result(rows=normalize_table1(configs))


def render(result: Table1Result) -> str:
    """Text rendering of Table I."""
    rows = []
    for r in result.rows:
        rows.append(
            [
                r.name,
                "-".join(f"{x:.2g}x" for x in r.bottom_fc),
                "-".join(f"{x:.2g}x" for x in r.top_fc),
                f"{r.num_tables:.2g}x",
                f"{r.table_rows:.2g}x",
                f"{r.table_dim:.2g}x",
                f"{r.lookups:.2g}x",
            ]
        )
    return format_table(
        ["model", "bottom FC", "top FC", "tables", "rows", "dim", "lookups"],
        rows,
        title="Table I: normalized model-architecture parameters",
    )
