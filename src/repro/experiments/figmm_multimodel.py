"""Figure MM (extension): mixed multi-model traffic vs static partitioning.

The paper's fleet (Section II, Figure 1) serves RMC1/RMC2/RMC3 side by
side on mixed server generations. This experiment asks the sizing
question that setup raises: given a heterogeneous Broadwell/Skylake pool
and three diurnal traffic classes that peak at *different* hours, is it
better to share every replica across all models (paying model swaps and
residency churn) or to statically partition replicas per model (paying
stranded capacity whenever a class is off-peak)?

Both arms replay byte-identical arrival traces from one seeded
:class:`~repro.serving.loadgen.MixedModelLoadGenerator`:

* **mixed** — one :class:`~repro.serving.multimodel.MultiModelRouter`
  over the whole pool, model-aware least-loaded routing,
  drain-before-swap residency management.
* **static** — replicas split per model by largest-remainder on each
  class's demand share (rate x service time, at least one replica each);
  each partition runs its own single-model router over the same
  per-class substream, so swaps only ever happen during warm-up.

Reported per class: offered/completed and p99 under both arms, plus
fleet-level throughput, swap/thrash counts, and residency utilization.
Both DES engines produce bit-identical results; ``engine`` only changes
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from ..hw.server import BROADWELL, SKYLAKE, ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..serving.loadgen import (
    MixedModelLoadGenerator,
    MixedQuery,
    ModelClassRate,
)
from ..serving.multimodel import (
    MultiModelPool,
    MultiModelResult,
    MultiModelRouter,
)


@dataclass(frozen=True)
class MultiModelComparison:
    """Mixed-pool vs statically partitioned serving of the same traffic."""

    replica_names: tuple[str, ...]
    model_names: tuple[str, ...]
    batch_size: int
    duration_s: float
    engine: str
    #: replicas assigned to each model class in the static arm.
    partition: tuple[int, ...]
    mixed: MultiModelResult
    static_by_model: tuple[MultiModelResult, ...]

    @property
    def mixed_throughput_qps(self) -> float:
        return self.mixed.throughput_qps

    @property
    def static_throughput_qps(self) -> float:
        return sum(r.throughput_qps for r in self.static_by_model)

    @property
    def static_completed(self) -> int:
        return sum(r.completed for r in self.static_by_model)

    @property
    def static_residency_utilization(self) -> float:
        """Slot-weighted mean residency across the static partitions."""
        slot_s = sum(
            r.residency_utilization * len(r.replica_names)
            for r in self.static_by_model
        )
        return slot_s / len(self.replica_names)


def _partition_sizes(
    replicas: tuple[ServerSpec, ...],
    models: tuple[ModelConfig, ...],
    mean_qps: tuple[float, ...],
    batch_size: int,
) -> tuple[int, ...]:
    """Largest-remainder split of replicas by per-class demand share.

    Demand is rate x mean service time over the (heterogeneous) replica
    set — the stationary utilization each class would impose — and every
    class gets at least one replica.
    """
    timings = {spec.name: TimingModel(spec) for spec in set(replicas)}
    demand = []
    for config, qps in zip(models, mean_qps):
        service_s = [
            timings[spec.name].model_latency(config, batch_size).total_seconds
            for spec in replicas
        ]
        demand.append(qps * sum(service_s) / len(service_s))
    total_demand = sum(demand)
    spare = len(replicas) - len(models)
    shares = [spare * d / total_demand for d in demand]
    sizes = [1 + int(share) for share in shares]
    remainders = [share - int(share) for share in shares]
    # Hand out the leftover replicas by largest remainder; ties fall to
    # the lower class index, keeping the split deterministic.
    leftover = len(replicas) - sum(sizes)
    order = sorted(
        range(len(models)), key=lambda i: (-remainders[i], i)
    )
    for i in order[:leftover]:
        sizes[i] += 1
    return tuple(sizes)


def run(
    replicas: tuple[ServerSpec, ...] = (BROADWELL, BROADWELL, SKYLAKE, SKYLAKE),
    models: tuple[ModelConfig, ...] = (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL),
    batch_size: int = 8,
    slots_per_replica: int = 2,
    mean_qps: tuple[float, ...] = (2400.0, 1400.0, 900.0),
    amplitude: float = 0.6,
    period_s: float = 0.4,
    duration_s: float = 0.4,
    dram_headroom: float = 0.8,
    thrash_window_s: float = 0.05,
    seed: int = 23,
    engine: str = "vectorized",
    metrics: MetricsRegistry | None = None,
    tracer=None,
) -> MultiModelComparison:
    """Serve one compressed diurnal cycle under both pooling disciplines.

    Args:
        replicas: the heterogeneous serving pool (shared by both arms).
        models: model classes; class ``i`` draws rate ``mean_qps[i]``.
        batch_size: items per request (prices service times).
        slots_per_replica: residency slots per replica in the mixed arm.
        mean_qps: cycle-average arrival rate per class.
        amplitude: diurnal swing of every class; phases are spread evenly
            over the period so classes peak at different times (that
            anti-correlation is what the mixed pool exploits).
        period_s: compressed diurnal period.
        duration_s: simulated horizon (defaults to one full cycle).
        dram_headroom: usable DRAM fraction for residency accounting.
        thrash_window_s: swap-thrash window (see
            :class:`~repro.serving.multimodel.MultiModelPool`).
        seed: seeds the shared arrival trace and both arms' service noise.
        engine: DES engine; results are bit-identical across engines.
        metrics: optional registry the mixed arm records into.
        tracer: optional tracer for the mixed arm's spans.
    """
    if len(models) != len(mean_qps):
        raise ValueError("need one mean_qps per model")
    if len(replicas) < len(models):
        raise ValueError("need at least one replica per model class")
    classes = tuple(
        ModelClassRate(
            name=config.name,
            mean_qps=qps,
            amplitude=amplitude,
            phase_s=i * period_s / len(models),
        )
        for i, (config, qps) in enumerate(zip(models, mean_qps))
    )
    load = MixedModelLoadGenerator(classes, period_s=period_s, seed=seed)

    # Mixed arm: every replica serves every class, swaps and all.
    mixed_router = MultiModelRouter(
        MultiModelPool(
            replicas,
            models,
            dram_headroom=dram_headroom,
            slots_per_replica=slots_per_replica,
            thrash_window_s=thrash_window_s,
        ),
        batch_size=batch_size,
        seed=seed,
        engine=engine,
        tracer=tracer,
        metrics=metrics,
    )
    mixed = mixed_router.run(duration_s, load=load)

    # Static arm: the same replicas, hard-partitioned per class, each
    # partition replaying its class's substream of the same trace.
    sizes = _partition_sizes(tuple(replicas), tuple(models), mean_qps, batch_size)
    by_class = load.generate_by_class(duration_s)
    static_results = []
    start = 0
    for i, (config, size) in enumerate(zip(models, sizes)):
        part = tuple(replicas[start : start + size])
        start += size
        queries = [
            MixedQuery(
                query_id=q,
                arrival_s=t_s,
                num_items=load.num_items,
                model=config.name,
            )
            for q, t_s in enumerate(by_class[config.name])
        ]
        router = MultiModelRouter(
            MultiModelPool(
                part,
                (config,),
                dram_headroom=dram_headroom,
                slots_per_replica=slots_per_replica,
                thrash_window_s=thrash_window_s,
            ),
            batch_size=batch_size,
            seed=seed + 1 + i,
            engine=engine,
        )
        static_results.append(router.run(duration_s, queries=queries))

    return MultiModelComparison(
        replica_names=tuple(spec.name for spec in replicas),
        model_names=tuple(config.name for config in models),
        batch_size=batch_size,
        duration_s=duration_s,
        engine=engine,
        partition=sizes,
        mixed=mixed,
        static_by_model=tuple(static_results),
    )


def render(result: MultiModelComparison) -> str:
    """Text rendering of the mixed-vs-static comparison."""
    rows = []
    for i, name in enumerate(result.model_names):
        static = result.static_by_model[i]
        rows.append(
            [
                name,
                result.partition[i],
                result.mixed.offered_by_model[i],
                result.mixed.completed_by_model[i],
                f"{result.mixed.p99_s(i) * 1e3:.2f}",
                static.completed,
                f"{static.p99_s(0) * 1e3:.2f}",
            ]
        )
    title = (
        f"Figure MM: {'+'.join(sorted(set(result.replica_names)))} pool of "
        f"{len(result.replica_names)}, mixed residency vs static "
        f"partitioning, {result.duration_s * 1e3:.0f} ms cycle, "
        f"engine={result.engine}"
    )
    table = format_table(
        [
            "model", "static replicas", "offered",
            "mixed done", "mixed p99 ms", "static done", "static p99 ms",
        ],
        rows,
        title=title,
    )
    lines = [
        table,
        (
            f"throughput: mixed {result.mixed_throughput_qps:.0f} qps vs "
            f"static {result.static_throughput_qps:.0f} qps"
        ),
        (
            f"mixed swaps: {result.mixed.swaps} "
            f"({result.mixed.thrash} thrash, "
            f"{result.mixed.loads} table loads, "
            f"{result.mixed.drain_claims} drain claims, "
            f"{result.mixed.hol_bypasses} HoL bypasses)"
        ),
        (
            f"residency utilization: mixed "
            f"{result.mixed.residency_utilization:.3f} vs static "
            f"{result.static_residency_utilization:.3f}"
        ),
    ]
    return "\n".join(lines)
