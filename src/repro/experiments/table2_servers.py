"""Table II: the server generations present in the data center."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..hw.server import ALL_SERVERS, ServerSpec


@dataclass(frozen=True)
class Table2Result:
    """The server specification set."""

    servers: tuple[ServerSpec, ...]


def run(servers: tuple[ServerSpec, ...] = ALL_SERVERS) -> Table2Result:
    """Collect the Table-II server specs."""
    return Table2Result(servers=servers)


def render(result: Table2Result) -> str:
    """Text rendering of Table II."""
    rows = []
    for s in result.servers:
        rows.append(
            [
                s.name,
                f"{s.frequency_ghz} GHz",
                f"{s.cores_per_socket}x{s.sockets}",
                s.simd.name,
                f"{s.l2_bytes // 1024} KB",
                f"{s.l3_bytes / (1024 * 1024):.1f} MB",
                "incl" if s.inclusive_llc else "excl",
                f"{s.ddr_type}-{s.ddr_freq_mhz}",
                f"{s.dram_bw_bytes_per_s / 1e9:.0f} GB/s",
            ]
        )
    return format_table(
        ["server", "freq", "cores", "SIMD", "L2", "L3", "L2/L3", "DDR", "BW"],
        rows,
        title="Table II: data-center server architectures",
    )
