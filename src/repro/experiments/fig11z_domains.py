"""Figure 11z (extension): zone-loss ladder with replicated shards.

Figure 11x stressed the fleet with *independent* faults. Real outages
are correlated: a rack power event or a zone partition takes out every
replica — and every embedding-shard copy — in the domain at once (Hsia
et al., arXiv:2010.05037). This experiment replays one seeded trace
through :class:`~repro.serving.faults.ResilientRouter` across a
scenario × replication ladder:

* **scenarios** — ``independent`` (a seeded host-level storm), ``rack``
  (one rack crash) and ``zone`` (one zone crash);
* **replication** — ``k`` = 1/2/3 shard copies placed by
  :func:`~repro.serving.distributed.replicate_shards` across the widest
  feasible failure domains.

Each cell compiles the domain events down to ordinary per-replica fault
primitives: the domain crash expands via
:meth:`~repro.serving.domains.DomainSchedule.expand_to_schedule`, shard
*blackouts* (no live copy; reads cannot complete) become fleet-wide
crashes, and failover windows (dead primary, live copy elsewhere) become
fleet-wide stragglers whose slowdown prices the extra network hops — so
both DES engines consume the compiled schedule unchanged. Reported per
cell: availability, latency percentiles, unresolved requests, the
partial-fan-out quality a degraded read would cost, and the
time-to-full-redundancy of the NIC-bounded recovery
(:func:`~repro.serving.distributed.recovery_timeline`).

The headline: **k=2 domain-spread placement survives a rack or zone loss
that collapses k=1** — same trace, same router, different placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.distributions import LatencySummary
from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from ..config.presets import RMC1_SMALL
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer
from ..serving.distributed import (
    NetworkConfig,
    RecoveryTimeline,
    degraded_fanout_quality,
    recovery_timeline,
    replicate_shards,
    shard_tables,
)
from ..serving.domains import (
    DOMAIN_HOST,
    DOMAIN_RACK,
    DOMAIN_ZONE,
    DomainCrash,
    DomainSchedule,
    FleetTopology,
    domain_storm,
)
from ..serving.faults import (
    FaultSchedule,
    ReplicaCrash,
    ResiliencePolicy,
    ResilientRouter,
    Straggler,
)
from ..serving.metrics import SLA, ResilienceStats

#: Scenario order (render order): widening blast radius.
SCENARIOS = ("independent", "rack", "zone")

#: Replication ladder (copies per shard).
REPLICATION_FACTORS = (1, 2, 3)


@dataclass(frozen=True)
class LadderCell:
    """One (scenario, replication factor) cell of the ladder."""

    scenario: str
    replication_factor: int
    spread: str
    summary: LatencySummary
    stats: ResilienceStats
    unresolved: int
    blackout_s: float
    failover_s: float
    max_failover_hops: int
    lost_tables: tuple[int, ...]
    quality: dict[str, float]
    time_to_full_redundancy_s: float
    recovery_transfers: int
    cold_reloads: int


@dataclass(frozen=True)
class Figure11zResult:
    """The full scenario × replication ladder under one seeded trace."""

    server_name: str
    model_name: str
    num_machines: int
    replicas_per_host: int
    hosts_per_rack: int
    racks_per_zone: int
    num_zones: int
    num_shards: int
    offered_qps: float
    duration_s: float
    sla_deadline_s: float
    cells: dict[str, LadderCell]

    def cell(self, scenario: str, replication_factor: int) -> LadderCell:
        """The cell for one scenario and replication factor."""
        return self.cells[f"{scenario}/k{replication_factor}"]


def _scenarios(
    topology: FleetTopology, duration_s: float, seed: int
) -> dict[str, DomainSchedule]:
    """The three correlated outage shapes, all deterministic in ``seed``.

    The rack/zone crashes hit domain 0 — the one holding every shard's
    primary copy under the arithmetic placement — at 30% of the horizon
    for 15% of it, so the k=1 blackout dominates the availability budget.
    """
    return {
        "independent": domain_storm(
            topology,
            duration_s,
            seed=seed + 1,
            kinds=(DOMAIN_HOST,),
            crash_count=2,
            partition_count=1,
            slowdown_count=1,
        ),
        "rack": DomainSchedule(
            crashes=(
                DomainCrash(
                    kind=DOMAIN_RACK,
                    domain_id=0,
                    at_s=0.3 * duration_s,
                    downtime_s=0.15 * duration_s,
                ),
            )
        ),
        "zone": DomainSchedule(
            crashes=(
                DomainCrash(
                    kind=DOMAIN_ZONE,
                    domain_id=0,
                    at_s=0.3 * duration_s,
                    downtime_s=0.15 * duration_s,
                ),
            )
        ),
    }


def _compile_schedule(
    events: DomainSchedule,
    topology: FleetTopology,
    recovery: RecoveryTimeline,
    horizon_s: float,
    base_service_s: float,
    network: NetworkConfig,
) -> tuple[FaultSchedule, float, float, int, tuple[int, ...]]:
    """Lower domain events + shard state to one per-replica schedule.

    Returns the compiled schedule plus (blackout seconds, failover
    seconds, worst failover hops, tables lost during blackouts). Shard
    blackouts crash the whole fleet for the window (reads cannot
    complete without the shard); failover windows slow every replica by
    the extra round trips the slowest shard read pays.
    """
    expanded = events.expand_to_schedule(topology)
    extra_crashes: list[ReplicaCrash] = []
    extra_stragglers: list[Straggler] = []
    blackout_s = 0.0
    failover_s = 0.0
    worst_hops = 0
    lost: set[int] = set()
    for seg in recovery.service_segments(horizon_s):
        span_s = seg.end_s - seg.start_s
        if span_s <= 0.0:
            continue
        if seg.blackout:
            blackout_s += span_s
            lost.update(seg.lost_tables)
            extra_crashes.extend(
                ReplicaCrash(
                    replica_id=r, at_s=seg.start_s, downtime_s=span_s
                )
                for r in range(topology.num_replicas)
            )
        elif seg.max_failover_hops > 0:
            failover_s += span_s
            worst_hops = max(worst_hops, seg.max_failover_hops)
            slowdown = 1.0 + (
                seg.max_failover_hops * network.rtt_s / base_service_s
            )
            extra_stragglers.extend(
                Straggler(
                    replica_id=r,
                    start_s=seg.start_s,
                    duration_s=span_s,
                    slowdown=slowdown,
                )
                for r in range(topology.num_replicas)
            )
    schedule = FaultSchedule(
        crashes=expanded.crashes + tuple(extra_crashes),
        stragglers=expanded.stragglers + tuple(extra_stragglers),
        bandwidth_faults=expanded.bandwidth_faults,
    )
    return schedule, blackout_s, failover_s, worst_hops, tuple(sorted(lost))


def run(
    server: ServerSpec = BROADWELL,
    config: ModelConfig = RMC1_SMALL,
    batch_size: int = 8,
    replicas_per_host: int = 1,
    hosts_per_rack: int = 2,
    racks_per_zone: int = 2,
    num_zones: int = 2,
    num_shards: int = 2,
    utilization: float = 0.3,
    duration_s: float = 2.0,
    sla_deadline_factor: float = 10.0,
    network: NetworkConfig = NetworkConfig(),
    seed: int = 11,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace_cell: str = "zone/k2",
    engine: str = "reference",
) -> Figure11zResult:
    """Replay one seeded trace across the zone-loss × replication ladder.

    Args:
        server / config / batch_size: the replicated service.
        replicas_per_host / hosts_per_rack / racks_per_zone / num_zones:
            fleet topology; the machine count is their product.
        num_shards: embedding shards (≤ the model's table count keeps
            every shard non-empty).
        utilization: offered load as a fraction of fault-free capacity;
            moderate by default so survivors can absorb a zone's load.
        duration_s: simulated horizon.
        sla_deadline_factor: SLA deadline as a multiple of the
            fault-free service time.
        network: NIC model for failover hops and recovery bandwidth.
        seed: arrival/storm RNG seed (shared by every cell).
        tracer: optional tracer observing the ``trace_cell`` run (its
            recovery transfers and its router run).
        metrics: optional registry every cell records into, labelled
            ``cell=<scenario>/k<k>``.
        trace_cell: which cell the ``tracer`` observes.
        engine: DES engine for every cell (``reference`` or
            ``vectorized``); results are bit-identical across engines.
    """
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in (0, 1)")
    topology = FleetTopology(
        num_replicas=replicas_per_host
        * hosts_per_rack
        * racks_per_zone
        * num_zones,
        replicas_per_host=replicas_per_host,
        hosts_per_rack=hosts_per_rack,
        racks_per_zone=racks_per_zone,
    )
    num_machines = topology.num_replicas
    plan = shard_tables(config, num_shards)
    base_service_s = (
        TimingModel(server).model_latency(config, batch_size).total_seconds
    )
    sla = SLA(deadline_s=sla_deadline_factor * base_service_s, percentile=0.99)
    # Retries with instantaneous health knowledge: correlated crashes kill
    # whole domains at once, so passive per-request discovery would turn
    # every outage into a retry storm before the first health check.
    policy = ResiliencePolicy(
        timeout_s=30.0 * base_service_s,
        max_retries=2,
        backoff_base_s=base_service_s,
    )
    probe = ResilientRouter(
        server, config, batch_size, num_machines, seed=seed, engine=engine
    )
    offered_qps = utilization * probe.max_stable_qps()
    scenarios = _scenarios(topology, duration_s, seed)

    cells: dict[str, LadderCell] = {}
    for scenario_name, events in scenarios.items():
        for k in REPLICATION_FACTORS:
            key = f"{scenario_name}/k{k}"
            observed = tracer if key == trace_cell else None
            replication = replicate_shards(plan, topology, k)
            recovery = recovery_timeline(
                server,
                config,
                replication,
                topology,
                events,
                network=network,
                tracer=observed,
                metrics=metrics,
                metrics_labels={"cell": key},
            )
            schedule, blackout_s, failover_s, worst_hops, lost = (
                _compile_schedule(
                    events,
                    topology,
                    recovery,
                    duration_s,
                    base_service_s,
                    network,
                )
            )
            router = ResilientRouter(
                server,
                config,
                batch_size,
                num_machines,
                policy=policy,
                seed=seed,
                tracer=observed,
                metrics=metrics,
                metrics_labels={"cell": key},
                engine=engine,
            )
            result = router.run(
                offered_qps, duration_s, faults=schedule, sla=sla
            )
            cells[key] = LadderCell(
                scenario=scenario_name,
                replication_factor=k,
                spread=replication.spread,
                summary=result.summary(),
                stats=result.stats(),
                unresolved=result.unresolved,
                blackout_s=blackout_s,
                failover_s=failover_s,
                max_failover_hops=worst_hops,
                lost_tables=lost,
                quality=degraded_fanout_quality(config, lost, seed=seed),
                time_to_full_redundancy_s=recovery.time_to_full_redundancy_s,
                recovery_transfers=sum(
                    1 for t in recovery.transfers if t.source_host is not None
                ),
                cold_reloads=sum(
                    1 for t in recovery.transfers if t.source_host is None
                ),
            )
    return Figure11zResult(
        server_name=server.name,
        model_name=config.name,
        num_machines=num_machines,
        replicas_per_host=replicas_per_host,
        hosts_per_rack=hosts_per_rack,
        racks_per_zone=racks_per_zone,
        num_zones=num_zones,
        num_shards=plan.num_shards,
        offered_qps=offered_qps,
        duration_s=duration_s,
        sla_deadline_s=sla.deadline_s,
        cells=cells,
    )


def render(result: Figure11zResult) -> str:
    """Text rendering of the Figure 11z ladder."""
    rows = []
    for scenario in SCENARIOS:
        for k in REPLICATION_FACTORS:
            cell = result.cell(scenario, k)
            rows.append(
                [
                    f"{scenario}/k{k}",
                    cell.spread,
                    f"{100 * cell.stats.availability:.2f}",
                    f"{cell.summary.p99 * 1e3:.2f}",
                    cell.unresolved,
                    f"{cell.blackout_s * 1e3:.1f}",
                    f"{cell.failover_s * 1e3:.1f}",
                    len(cell.lost_tables),
                    f"{cell.quality['ndcg_at_k']:.3f}",
                    f"{cell.time_to_full_redundancy_s * 1e3:.1f}",
                    cell.recovery_transfers + cell.cold_reloads,
                ]
            )
    header = (
        f"Figure 11z: {result.model_name} x{result.num_machines} machines "
        f"({result.num_zones} zones x {result.racks_per_zone} racks x "
        f"{result.hosts_per_rack} hosts), {result.num_shards} shards, "
        f"{result.offered_qps:.0f} qps offered for {result.duration_s:.1f} s; "
        f"SLA deadline {result.sla_deadline_s * 1e3:.2f} ms"
    )
    table = format_table(
        [
            "scenario", "spread", "avail %", "p99 ms", "unresolved",
            "blackout ms", "failover ms", "lost tbls", "NDCG",
            "redundancy ms", "xfers",
        ],
        rows,
        title=header,
    )
    lone = result.cell("zone", 1)
    spread2 = result.cell("zone", 2)
    headline = (
        f"zone loss: k=1 availability "
        f"{100 * lone.stats.availability:.1f}% (blackout "
        f"{lone.blackout_s * 1e3:.0f} ms, partial fan-out NDCG "
        f"{lone.quality['ndcg_at_k']:.3f}) vs k=2 {spread2.spread}-spread "
        f"{100 * spread2.stats.availability:.1f}% with p99 "
        f"{spread2.summary.p99 * 1e3:.2f} ms and full redundancy back "
        f"{spread2.time_to_full_redundancy_s * 1e3:.0f} ms in"
    )
    return "\n".join([table, headline])
