"""Latency-distribution analysis for the tail-latency study (Figure 11).

The paper's production data shows the same FC operator following a
*multi-modal* latency distribution on Broadwell (modes at ~40/58/75 us,
corresponding to low/medium/high co-location) but a single mode on Skylake.
This module provides percentile summaries and a histogram-based mode
counter used to verify that contrast on simulated distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.quantiles import quantile


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency sample."""

    count: int
    mean: float
    p5: float
    p50: float
    p95: float
    p99: float
    p999: float

    @property
    def tail_spread(self) -> float:
        """p99/p5 — the shaded-band width of Figure 11b/c."""
        return self.p99 / self.p5 if self.p5 > 0 else float("inf")


def summarize(samples) -> LatencySummary:
    """Percentile summary of a non-empty latency sample."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if np.any(arr < 0):
        raise ValueError("latencies must be non-negative")
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p5=quantile(arr, 0.05),
        p50=quantile(arr, 0.50),
        p95=quantile(arr, 0.95),
        p99=quantile(arr, 0.99),
        p999=quantile(arr, 0.999),
    )


def count_modes(
    samples,
    bins: int = 40,
    smoothing_passes: int = 2,
    prominence: float = 0.08,
) -> int:
    """Count the modes of a latency distribution.

    Histogram the samples, lightly smooth, and count local maxima whose
    height exceeds ``prominence`` of the global peak and that are separated
    by a genuine valley (drop below 60% of the smaller neighbouring peak).
    Deliberately simple and deterministic — it distinguishes "one mode" from
    "several clearly separated co-location modes", which is all Figure 11a
    needs.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size < 10:
        raise ValueError("need at least 10 samples to count modes")
    hist, _ = np.histogram(arr, bins=bins)
    density = hist.astype(np.float64)
    kernel = np.array([0.25, 0.5, 0.25])
    for _ in range(smoothing_passes):
        density = np.convolve(density, kernel, mode="same")
    peak_floor = prominence * density.max()

    modes = 0
    last_peak_height = 0.0
    valley_since_peak = np.inf
    for i in range(len(density)):
        left = density[i - 1] if i > 0 else -1.0
        right = density[i + 1] if i < len(density) - 1 else -1.0
        valley_since_peak = min(valley_since_peak, density[i])
        if density[i] >= left and density[i] > right and density[i] >= peak_floor:
            separated = (
                modes == 0
                or valley_since_peak < 0.6 * min(last_peak_height, density[i])
            )
            if separated:
                modes += 1
                last_peak_height = density[i]
                valley_since_peak = np.inf
    return max(1, modes)
