"""Analysis helpers: roofline, MPKI, latency distributions, text rendering."""

from .distributions import LatencySummary, count_modes, summarize
from .mpki import (
    MpkiResult,
    instruction_estimate,
    measure_mpki,
    measure_sls_trace_mpki,
)
from .roofline import (
    IntensityPoint,
    RooflinePlacement,
    figure5_intensity_points,
    intensity_point,
    roofline_report,
)
from .tables import format_bar_chart, format_table

__all__ = [
    "LatencySummary",
    "count_modes",
    "summarize",
    "MpkiResult",
    "instruction_estimate",
    "measure_mpki",
    "measure_sls_trace_mpki",
    "IntensityPoint",
    "RooflinePlacement",
    "figure5_intensity_points",
    "intensity_point",
    "roofline_report",
    "format_bar_chart",
    "format_table",
]
