"""Operational-intensity analysis (Figure 5 left, Figure 2).

The paper characterizes operators by compute density — FLOPs per byte read:
SparseLengthsSum at 0.25 FLOPs/B versus RNN (5.5), FC (18) and CNN (141)
layers. Density depends on batch size for weight-reusing operators (FC and
RNN amortize their weight reads across the batch), so each comparison point
carries the batch it is evaluated at; the defaults follow the production
operating points the paper's numbers correspond to.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.operators.base import Operator


@dataclass(frozen=True)
class IntensityPoint:
    """One operator's position on the compute-density axis."""

    name: str
    op_type: str
    batch_size: int
    flops: int
    bytes_read: int

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte read."""
        if self.bytes_read == 0:
            return float("inf")
        return self.flops / self.bytes_read


def intensity_point(operator: Operator, batch_size: int) -> IntensityPoint:
    """Compute an operator's operational intensity at ``batch_size``."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    cost = operator.cost(batch_size)
    return IntensityPoint(
        name=operator.name,
        op_type=operator.op_type,
        batch_size=batch_size,
        flops=cost.flops,
        bytes_read=cost.bytes_read,
    )


@dataclass(frozen=True)
class RooflinePlacement:
    """An operator placed under a server's roofline.

    Attributes:
        point: the operator's intensity point.
        attainable_gflops: min(compute ceiling, intensity x bandwidth).
        bound: "memory" or "compute".
    """

    point: IntensityPoint
    attainable_gflops: float
    bound: str


def roofline_report(server, points: list[IntensityPoint]) -> list[RooflinePlacement]:
    """Place intensity points under a server's roofline.

    The ridge point sits at ``peak_gflops / streaming_bandwidth``; operators
    left of it (SLS at 0.25 FLOPs/B) are memory-bound, operators right of it
    (conv layers) are compute-bound — the analytical backbone of Figure 5.
    """
    peak = server.peak_gflops_per_core
    bandwidth_gbps = server.dram_bw_bytes_per_s / 1e9
    placements = []
    for point in points:
        memory_roof = point.operational_intensity * bandwidth_gbps
        attainable = min(peak, memory_roof)
        placements.append(
            RooflinePlacement(
                point=point,
                attainable_gflops=attainable,
                bound="memory" if memory_roof < peak else "compute",
            )
        )
    return placements


def figure5_intensity_points() -> list[IntensityPoint]:
    """The Figure-5(left) comparison set, computed from real operators.

    Batch sizes reflect the regimes the paper's numbers were measured in:
    SLS sums rows with no reuse (batch-independent density), the FC is a
    ResNet50-style 2048x1000 layer at a production batch, the CNN a
    ResNet50 3x3 conv (high density even at unit batch), and the RNN an
    NLP-scale recurrent layer whose weights are re-streamed per timestep.
    """
    from ..core.operators import (
        Conv2D,
        EmbeddingTable,
        FullyConnected,
        RecurrentCell,
        SparseLengthsSum,
    )

    sls = SparseLengthsSum(
        "SLS", EmbeddingTable(100_000, 32), lookups_per_sample=80
    )
    fc = FullyConnected("FC", 2048, 1000)
    cnn = Conv2D("CNN", 64, 64, 3, 56)
    rnn = RecurrentCell("RNN", 1024, 1024, 50)
    return [
        intensity_point(sls, 1),
        intensity_point(rnn, 8),
        intensity_point(fc, 32),
        intensity_point(cnn, 1),
    ]
