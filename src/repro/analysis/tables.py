"""Plain-text rendering of experiment results: tables and bar charts.

Every benchmark regenerates its paper table/figure as text, so results are
inspectable straight from ``pytest benchmarks/ --benchmark-only`` output or
the example scripts without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("chart needs at least one bar")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values) or 1.0
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} | {bar} {_cell(value)}{unit}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
