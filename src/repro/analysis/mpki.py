"""LLC miss-rate (MPKI) measurement through the cache simulator (Fig 5 right).

The paper reports LLC misses per kilo-instruction for representative
operators on Broadwell: ~8 MPKI for a production SparseLengthsSum (1-10
across configurations) versus 0.5 (RNN), 0.2 (FC) and 0.06 (CNN). We
reproduce the measurement mechanistically: generate each operator's address
trace, run it through the Table-II cache hierarchy, count DRAM fills, and
divide by an instruction estimate.

The instruction model charges SIMD arithmetic (FLOPs / per-instruction
width), one load/store per 32 contiguous bytes, and a fixed per-lookup
overhead for SLS (address generation, bounds checks, loop control in the
framework's scalar gather loop — calibrated so production-like SLS traces
land in the paper's 1-10 MPKI band).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operators.base import Operator, OP_SLS
from ..core.operators.sls import SparseLengthsSum
from ..hw.hierarchy import CacheHierarchy
from ..hw.server import ServerSpec
from ..hw.trace_integration import replay_line_trace
from ..obs.profile import OpProfiler
from ..obs.tracer import Tracer

#: fp32 FLOPs per SIMD arithmetic instruction charged (AVX-2 FMA).
FLOPS_PER_INSTRUCTION = 16

#: Contiguous bytes per load/store instruction charged.
BYTES_PER_ACCESS_INSTRUCTION = 32

#: Scalar-loop overhead instructions per sparse lookup (Caffe2-style SLS).
SLS_INSTRUCTIONS_PER_LOOKUP = 80


@dataclass(frozen=True)
class MpkiResult:
    """LLC miss rate of one operator trace."""

    name: str
    op_type: str
    instructions: int
    llc_misses: int
    l1_hits: int
    l2_hits: int
    l3_hits: int

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return 1000.0 * self.llc_misses / self.instructions


def instruction_estimate(operator: Operator, batch_size: int) -> int:
    """Estimate retired instructions for one operator invocation."""
    cost = operator.cost(batch_size)
    instructions = cost.flops // FLOPS_PER_INSTRUCTION
    instructions += cost.total_bytes // BYTES_PER_ACCESS_INSTRUCTION
    if operator.op_type == OP_SLS and isinstance(operator, SparseLengthsSum):
        lookups = batch_size * operator.lookups_per_sample
        instructions += lookups * SLS_INSTRUCTIONS_PER_LOOKUP
    return max(1, int(instructions))


def measure_mpki(
    operator: Operator,
    server: ServerSpec,
    batch_size: int = 1,
    iterations: int = 20,
    warmup: int = 2,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
) -> MpkiResult:
    """Run ``iterations`` invocations of the operator trace through the
    server's cache hierarchy and report steady-state MPKI.

    The first ``warmup`` iterations populate the caches (so dense operators
    reach their steady, reuse-heavy state) and are excluded from the stats.
    ``engine`` selects the cache simulator; the vectorized default is
    bit-identical to ``"reference"`` and much faster on long traces.
    """
    if iterations <= warmup:
        raise ValueError("iterations must exceed warmup")
    rng = rng or np.random.default_rng(0)
    hierarchy = CacheHierarchy(server, engine=engine)
    for _ in range(warmup):
        hierarchy.access_trace(operator.address_trace(batch_size, rng))
    hierarchy.reset_stats()
    for _ in range(iterations - warmup):
        hierarchy.access_trace(operator.address_trace(batch_size, rng))
    stats = hierarchy.stats
    instructions = instruction_estimate(operator, batch_size) * (iterations - warmup)
    return MpkiResult(
        name=operator.name,
        op_type=operator.op_type,
        instructions=instructions,
        llc_misses=stats.dram_accesses,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        l3_hits=stats.l3_hits,
    )


def measure_sls_trace_mpki(
    sls: SparseLengthsSum,
    server: ServerSpec,
    rows: np.ndarray,
    engine: str = "vectorized",
    tracer: Tracer | None = None,
    profiler: OpProfiler | None = None,
    track: int = 0,
    t0_s: float = 0.0,
) -> MpkiResult:
    """MPKI of an SLS operator replaying a concrete lookup trace.

    Used with :mod:`repro.data.traces` to study how production locality
    (Figure 14) changes cache behaviour. The trace goes through the batch
    replay path (``line_trace_for_rows`` → ``access_lines``), so
    million-lookup traces are practical; pass a ``tracer``/``profiler`` to
    surface the replay in waterfalls and per-op attribution (both default
    to off and leave the stats bit-identical).
    """
    if rows.size == 0:
        raise ValueError("trace must contain at least one lookup")
    hierarchy = CacheHierarchy(server, engine=engine)
    replay_line_trace(
        hierarchy,
        sls.line_trace_for_rows(rows, line_bytes=hierarchy.line_bytes),
        tracer=tracer,
        profiler=profiler,
        track=track,
        t0_s=t0_s,
    )
    stats = hierarchy.stats
    lookups = int(rows.size)
    flops = lookups * sls.table.dim
    moved = lookups * sls.table.dim * 4 * 2
    instructions = (
        flops // FLOPS_PER_INSTRUCTION
        + moved // BYTES_PER_ACCESS_INSTRUCTION
        + lookups * SLS_INSTRUCTIONS_PER_LOOKUP
    )
    return MpkiResult(
        name=sls.name,
        op_type=sls.op_type,
        instructions=max(1, instructions),
        llc_misses=stats.dram_accesses,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        l3_hits=stats.l3_hits,
    )
