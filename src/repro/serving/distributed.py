"""Distributed (sharded) recommendation inference.

The paper notes its open-source benchmark "can be used to analyze
scheduling decisions, such as running recommendation models across many
nodes (distributed inference)". The standard production layout shards the
multi-GB embedding tables across servers: each shard executes the SLS
lookups for its tables, pooled vectors travel over the network, and one
node runs the MLPs and produces the CTR.

:func:`shard_tables` partitions tables greedily by size;
:func:`distributed_latency` predicts the end-to-end latency: the slowest
shard's SLS time (shards work in parallel), plus network transfer of the
pooled embedding vectors, plus the dense compute on the aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..core.graph import config_ops
from ..core.operators.base import OP_SLS
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from ..obs.tracer import NullTracer, Tracer, as_tracer


@dataclass(frozen=True)
class NetworkConfig:
    """Datacenter network between shards and the aggregator.

    Attributes:
        rtt_s: request/response round-trip latency.
        bandwidth_bytes_per_s: per-link bandwidth (25 GbE default).
    """

    rtt_s: float = 25e-6
    bandwidth_bytes_per_s: float = 25e9 / 8

    def __post_init__(self) -> None:
        if self.rtt_s < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("invalid network parameters")

    def transfer_s(self, payload_bytes: int) -> float:
        """Latency to move one payload shard→aggregator."""
        return self.rtt_s + payload_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of embedding tables to shards.

    Attributes:
        num_shards: shard count.
        table_assignment: shard index per embedding table, in table order.
    """

    num_shards: int
    table_assignment: tuple[int, ...]

    def tables_of(self, shard: int) -> list[int]:
        """Table indices owned by ``shard``."""
        return [i for i, s in enumerate(self.table_assignment) if s == shard]


def min_shards_for_capacity(
    config: ModelConfig, server: ServerSpec, dram_headroom: float = 0.8
) -> int:
    """Fewest shards such that every shard's tables fit the server's DRAM.

    Sharding exists because multi-GB embedding tables outgrow a single
    server's memory; ``dram_headroom`` reserves the remainder of
    ``server.dram_capacity_bytes`` for MLP weights, activations and the OS.
    The greedy partition is balanced, so the bound uses the aggregate size
    with one retry step in case the largest-first packing overshoots.
    """
    if not 0.0 < dram_headroom <= 1.0:
        raise ValueError("dram_headroom must be in (0, 1]")
    budget_bytes = int(server.dram_capacity_bytes * dram_headroom)
    biggest_table = max(
        t.storage_bytes(config.dtype) for t in config.embedding_tables
    )
    if biggest_table > budget_bytes:
        raise ValueError(
            f"table of {biggest_table} bytes cannot fit any shard's "
            f"{budget_bytes}-byte DRAM budget on {server.name}"
        )
    total_bytes = config.embedding_storage_bytes()
    num_shards = max(1, -(-total_bytes // budget_bytes))
    while True:
        plan = shard_tables(config, num_shards)
        shard_bytes = [
            sum(
                config.embedding_tables[i].storage_bytes(config.dtype)
                for i in plan.tables_of(shard)
            )
            for shard in range(plan.num_shards)
        ]
        if max(shard_bytes) <= budget_bytes:
            return num_shards
        num_shards += 1


def shard_tables(config: ModelConfig, num_shards: int) -> ShardPlan:
    """Greedy largest-first partition of tables by storage bytes."""
    if num_shards < 1:
        raise ValueError("need at least one shard")
    sizes = [
        (i, t.storage_bytes(config.dtype))
        for i, t in enumerate(config.embedding_tables)
    ]
    sizes.sort(key=lambda pair: -pair[1])
    loads = [0] * num_shards
    assignment = [0] * len(sizes)
    for table_idx, size in sizes:
        shard = loads.index(min(loads))
        assignment[table_idx] = shard
        loads[shard] += size
    return ShardPlan(num_shards=num_shards, table_assignment=tuple(assignment))


@dataclass(frozen=True)
class DistributedLatency:
    """End-to-end latency of one sharded inference."""

    model_name: str
    num_shards: int
    batch_size: int
    slowest_shard_seconds: float
    network_seconds: float
    dense_seconds: float

    @property
    def total_seconds(self) -> float:
        """Sharded end-to-end latency (shards overlap; network + dense
        follow the slowest shard)."""
        return self.slowest_shard_seconds + self.network_seconds + self.dense_seconds


def distributed_latency(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    plan: ShardPlan,
    network: NetworkConfig = NetworkConfig(),
    tracer: Tracer | NullTracer | None = None,
) -> DistributedLatency:
    """Predict sharded-inference latency on homogeneous shard servers.

    With a ``tracer``, the predicted inference is synthesized as one
    ``serving.shard.fanout`` span starting at t=0 with per-shard
    ``serving.shard.sls`` children (one track per shard) followed by
    ``serving.shard.network`` and ``serving.shard.dense`` on the
    aggregator track — the model's timeline, viewable in Perfetto.
    """
    timing = TimingModel(server)
    specs = config_ops(config)
    sls_specs = [s for s in specs if s.op_type == OP_SLS]
    if len(sls_specs) != len(plan.table_assignment):
        raise ValueError(
            f"plan covers {len(plan.table_assignment)} tables, model has "
            f"{len(sls_specs)}"
        )

    # Per-shard SLS time: the shard's own tables determine its hit ratio.
    shard_seconds = []
    for shard in range(plan.num_shards):
        tables = plan.tables_of(shard)
        if not tables:
            shard_seconds.append(0.0)
            continue
        shard_table_bytes = sum(
            config.embedding_tables[i].storage_bytes(config.dtype) for i in tables
        )
        hit = timing.table_hit_ratio(shard_table_bytes)
        total = 0.0
        for i in tables:
            spec = sls_specs[i]
            total += timing.sls_time(
                spec.name,
                spec.lookups_per_sample,
                spec.embedding_dim,
                batch_size,
                hit_ratio=hit,
                dtype_bytes=spec.dtype_bytes,
            ).seconds
        shard_seconds.append(total)

    # Pooled embedding vectors travel to the aggregator (links in parallel,
    # so the largest single shard payload bounds the transfer).
    payloads = []
    for shard in range(plan.num_shards):
        dims = sum(sls_specs[i].embedding_dim for i in plan.tables_of(shard))
        payloads.append(batch_size * dims * 4)
    network_seconds = (
        max(network.transfer_s(p) for p in payloads) if plan.num_shards > 1 else 0.0
    )

    dense_seconds = sum(
        timing.op_time(spec, batch_size).seconds
        for spec in specs
        if spec.op_type != OP_SLS
    )
    result = DistributedLatency(
        model_name=config.name,
        num_shards=plan.num_shards,
        batch_size=batch_size,
        slowest_shard_seconds=max(shard_seconds),
        network_seconds=network_seconds,
        dense_seconds=dense_seconds,
    )

    recorder = as_tracer(tracer)
    if recorder.enabled:
        aggregator_track = plan.num_shards
        recorder.set_track_name(aggregator_track, "aggregator")
        fanout_id = recorder.begin(
            "serving.shard.fanout",
            0.0,
            track=aggregator_track,
            num_shards=plan.num_shards,
            batch_size=batch_size,
        )
        for shard, shard_s in enumerate(shard_seconds):
            recorder.set_track_name(shard, f"shard {shard}")
            recorder.complete(
                "serving.shard.sls",
                0.0,
                shard_s,
                parent_id=fanout_id,
                track=shard,
                tables=len(plan.tables_of(shard)),
            )
        gather_seconds = result.slowest_shard_seconds
        dense_begin_seconds = gather_seconds + network_seconds
        if network_seconds > 0:
            recorder.complete(
                "serving.shard.network",
                gather_seconds,
                dense_begin_seconds,
                parent_id=fanout_id,
                track=aggregator_track,
            )
        recorder.complete(
            "serving.shard.dense",
            dense_begin_seconds,
            result.total_seconds,
            parent_id=fanout_id,
            track=aggregator_track,
        )
        recorder.end(fanout_id, result.total_seconds)
    return result


def sharding_sweep(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    shard_counts: list[int],
    network: NetworkConfig = NetworkConfig(),
) -> list[DistributedLatency]:
    """Latency across shard counts (the scaling curve)."""
    return [
        distributed_latency(
            server, config, batch_size, shard_tables(config, n), network
        )
        for n in shard_counts
    ]
