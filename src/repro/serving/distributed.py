"""Distributed (sharded) recommendation inference.

The paper notes its open-source benchmark "can be used to analyze
scheduling decisions, such as running recommendation models across many
nodes (distributed inference)". The standard production layout shards the
multi-GB embedding tables across servers: each shard executes the SLS
lookups for its tables, pooled vectors travel over the network, and one
node runs the MLPs and produces the CTR.

:func:`shard_tables` partitions tables greedily by size;
:func:`distributed_latency` predicts the end-to-end latency: the slowest
shard's SLS time (shards work in parallel), plus network transfer of the
pooled embedding vectors, plus the dense compute on the aggregator.

Shard *fault tolerance* builds on the failure-domain topology
(:mod:`repro.serving.domains`): :func:`replicate_shards` places ``k``
copies of every shard across distinct failure domains,
:func:`distributed_latency` fails over dead primaries to the next live
copy (one extra network hop per dead copy tried), and when every copy of
a shard is down the read degrades to a *partial fan-out* whose ranking
cost :func:`degraded_fanout_quality` prices through the same machinery
as :class:`~repro.serving.faults.DegradationPolicy`. Lost copies are
re-replicated by :func:`recovery_timeline` at ``min(NIC, DRAM)``
bandwidth on the DES clock — a bulk transfer, not a restart (Kalamkar et
al., arXiv:2005.04680) — yielding a time-to-full-redundancy metric.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from ..config.model_config import ModelConfig
from ..core.graph import config_ops
from ..core.operators.base import OP_SLS
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .domains import (
    DomainSchedule,
    FleetTopology,
    best_spread,
    diverse_domain_order,
)
from .faults import degraded_quality


@dataclass(frozen=True)
class NetworkConfig:
    """Datacenter network between shards and the aggregator.

    Attributes:
        rtt_s: request/response round-trip latency.
        bandwidth_bytes_per_s: per-link bandwidth (25 GbE default).
    """

    rtt_s: float = 25e-6
    bandwidth_bytes_per_s: float = 25e9 / 8

    def __post_init__(self) -> None:
        if self.rtt_s < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("invalid network parameters")

    def transfer_s(self, payload_bytes: int) -> float:
        """Latency to move one payload shard→aggregator."""
        return self.rtt_s + payload_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of embedding tables to shards.

    Attributes:
        num_shards: shard count.
        table_assignment: shard index per embedding table, in table order.
    """

    num_shards: int
    table_assignment: tuple[int, ...]

    def tables_of(self, shard: int) -> list[int]:
        """Table indices owned by ``shard``."""
        return [i for i, s in enumerate(self.table_assignment) if s == shard]


def min_shards_for_capacity(
    config: ModelConfig, server: ServerSpec, dram_headroom: float = 0.8
) -> int:
    """Fewest shards such that every shard's tables fit the server's DRAM.

    Sharding exists because multi-GB embedding tables outgrow a single
    server's memory; ``dram_headroom`` reserves the remainder of
    ``server.dram_capacity_bytes`` for MLP weights, activations and the OS.
    The greedy partition is balanced, so the bound uses the aggregate size
    with one retry step in case the largest-first packing overshoots.
    """
    if not 0.0 < dram_headroom <= 1.0:
        raise ValueError("dram_headroom must be in (0, 1]")
    budget_bytes = int(server.dram_capacity_bytes * dram_headroom)
    biggest_table = max(
        t.storage_bytes(config.dtype) for t in config.embedding_tables
    )
    if biggest_table > budget_bytes:
        raise ValueError(
            f"table of {biggest_table} bytes cannot fit any shard's "
            f"{budget_bytes}-byte DRAM budget on {server.name}"
        )
    total_bytes = config.embedding_storage_bytes()
    num_shards = max(1, -(-total_bytes // budget_bytes))
    while True:
        plan = shard_tables(config, num_shards)
        shard_bytes = [
            sum(
                config.embedding_tables[i].storage_bytes(config.dtype)
                for i in plan.tables_of(shard)
            )
            for shard in range(plan.num_shards)
        ]
        if max(shard_bytes) <= budget_bytes:
            return num_shards
        num_shards += 1


def shard_tables(config: ModelConfig, num_shards: int) -> ShardPlan:
    """Greedy largest-first partition of tables by storage bytes."""
    if num_shards < 1:
        raise ValueError("need at least one shard")
    sizes = [
        (i, t.storage_bytes(config.dtype))
        for i, t in enumerate(config.embedding_tables)
    ]
    sizes.sort(key=lambda pair: -pair[1])
    loads = [0] * num_shards
    assignment = [0] * len(sizes)
    for table_idx, size in sizes:
        shard = loads.index(min(loads))
        assignment[table_idx] = shard
        loads[shard] += size
    return ShardPlan(num_shards=num_shards, table_assignment=tuple(assignment))


# ------------------------------------------------------------- replication


@dataclass(frozen=True)
class ReplicationPlan:
    """Placement of ``k`` copies of every shard across failure domains.

    Copy 0 is the primary; reads fail over in copy order. Placement is
    pure arithmetic (no RNG), so the same plan always lands on the same
    hosts; :meth:`validate` re-checks the spread constraint against a
    topology.

    Attributes:
        plan: the underlying table→shard assignment.
        replication_factor: copies kept per shard (``k``).
        spread: domain kind (``host``/``rack``/``zone``) whose domains
            must be pairwise distinct across one shard's copies.
        copy_hosts: host id per ``[shard][copy]``.
    """

    plan: ShardPlan
    replication_factor: int
    spread: str
    copy_hosts: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication factor must be positive")
        if len(self.copy_hosts) != self.plan.num_shards:
            raise ValueError("copy_hosts must cover every shard")
        for hosts in self.copy_hosts:
            if len(hosts) != self.replication_factor:
                raise ValueError("every shard needs replication_factor copies")

    def hosts_of(self, shard: int) -> tuple[int, ...]:
        """Hosts holding ``shard``'s copies, primary first."""
        return self.copy_hosts[shard]

    def validate(self, topology: FleetTopology) -> None:
        """Raise unless every shard's copies sit in distinct domains."""
        for shard, hosts in enumerate(self.copy_hosts):
            domains = [topology.host_domain(h, self.spread) for h in hosts]
            if len(set(domains)) != len(domains):
                raise ValueError(
                    f"shard {shard} copies share a {self.spread} domain "
                    f"(hosts {hosts} map to {self.spread}s {tuple(domains)})"
                )


def replicate_shards(
    plan: ShardPlan,
    topology: FleetTopology,
    replication_factor: int,
    spread: str | None = None,
) -> ReplicationPlan:
    """Place ``replication_factor`` copies of each shard, domain-spread.

    Copy ``c`` of shard ``s`` lands in the ``(s + c) % D``-th domain of
    the ``spread`` kind's *zone-diverse order*
    (:func:`~repro.serving.domains.diverse_domain_order` — so adjacent
    copies straddle parent domains too), rotating shards across domains
    for balance; within a domain the host is chosen round-robin. ``None``
    picks the widest feasible kind via
    :func:`~repro.serving.domains.best_spread`. Raises with an actionable
    message when ``replication_factor`` exceeds the number of domains —
    the spread constraint is then infeasible.
    """
    if replication_factor < 1:
        raise ValueError("replication factor must be positive")
    if spread is None:
        spread = best_spread(topology, replication_factor)
    num_domains = topology.num_domains(spread)
    if replication_factor > num_domains:
        raise ValueError(
            f"cannot place {replication_factor} copies of each shard in "
            f"distinct {spread} domains: topology has only {num_domains} "
            f"{spread}(s); lower the replication factor, widen the fleet, "
            f"or spread across a narrower domain kind"
        )
    domain_order = diverse_domain_order(topology, spread)
    copy_hosts = []
    for shard in range(plan.num_shards):
        hosts = []
        for copy_index in range(replication_factor):
            domain_id = domain_order[(shard + copy_index) % num_domains]
            domain_hosts = topology.hosts_in(spread, domain_id)
            hosts.append(domain_hosts[(shard // num_domains) % len(domain_hosts)])
        copy_hosts.append(tuple(hosts))
    built = ReplicationPlan(
        plan=plan,
        replication_factor=replication_factor,
        spread=spread,
        copy_hosts=tuple(copy_hosts),
    )
    built.validate(topology)
    return built


@dataclass(frozen=True)
class DistributedLatency:
    """End-to-end latency of one sharded inference.

    ``failover_hops``/``lost_tables`` stay at their zero defaults unless
    the read ran against a :class:`ReplicationPlan` with dead copies.
    """

    model_name: str
    num_shards: int
    batch_size: int
    slowest_shard_seconds: float
    network_seconds: float
    dense_seconds: float
    failover_hops: int = 0
    lost_tables: tuple[int, ...] = ()

    @property
    def total_seconds(self) -> float:
        """Sharded end-to-end latency (shards overlap; network + dense
        follow the slowest shard)."""
        return self.slowest_shard_seconds + self.network_seconds + self.dense_seconds


def distributed_latency(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    plan: ShardPlan,
    network: NetworkConfig = NetworkConfig(),
    tracer: Tracer | NullTracer | None = None,
    replication: ReplicationPlan | None = None,
    copy_available: Sequence[Sequence[bool]] | None = None,
) -> DistributedLatency:
    """Predict sharded-inference latency on homogeneous shard servers.

    With a ``tracer``, the predicted inference is synthesized as one
    ``serving.shard.fanout`` span starting at t=0 with per-shard
    ``serving.shard.sls`` children (one track per shard) followed by
    ``serving.shard.network`` and ``serving.shard.dense`` on the
    aggregator track — the model's timeline, viewable in Perfetto.

    With a ``replication`` plan, ``copy_available[shard][copy]`` marks
    which copies are reachable (default all): each shard read walks its
    copy list, paying one extra ``network.rtt_s`` hop per dead copy
    tried, and a shard with *no* live copy drops out of the fan-out
    entirely — its tables are reported in ``lost_tables`` and the
    quality cost of serving without them is priced by
    :func:`degraded_fanout_quality`. ``replication=None`` reproduces the
    unreplicated prediction bit for bit.
    """
    timing = TimingModel(server)
    specs = config_ops(config)
    sls_specs = [s for s in specs if s.op_type == OP_SLS]
    if len(sls_specs) != len(plan.table_assignment):
        raise ValueError(
            f"plan covers {len(plan.table_assignment)} tables, model has "
            f"{len(sls_specs)}"
        )

    # Per-shard SLS time: the shard's own tables determine its hit ratio.
    shard_seconds = []
    for shard in range(plan.num_shards):
        tables = plan.tables_of(shard)
        if not tables:
            shard_seconds.append(0.0)
            continue
        shard_table_bytes = sum(
            config.embedding_tables[i].storage_bytes(config.dtype) for i in tables
        )
        hit = timing.table_hit_ratio(shard_table_bytes)
        total = 0.0
        for i in tables:
            spec = sls_specs[i]
            total += timing.sls_time(
                spec.name,
                spec.lookups_per_sample,
                spec.embedding_dim,
                batch_size,
                hit_ratio=hit,
                dtype_bytes=spec.dtype_bytes,
            ).seconds
        shard_seconds.append(total)

    # Failover: walk each shard's copy list; every dead copy tried costs
    # one extra round trip, and a shard with no live copy drops out.
    failover_hops = [0] * plan.num_shards
    lost_shards: set[int] = set()
    if replication is not None:
        if replication.plan != plan:
            raise ValueError(
                "replication plan was built for a different shard plan"
            )
        if copy_available is None:
            copy_available = [
                [True] * replication.replication_factor
                for _ in range(plan.num_shards)
            ]
        if len(copy_available) != plan.num_shards:
            raise ValueError("copy_available must cover every shard")
        for shard in range(plan.num_shards):
            avail = list(copy_available[shard])
            if len(avail) != replication.replication_factor:
                raise ValueError("copy_available must cover every copy")
            live = [i for i, up in enumerate(avail) if up]
            if live:
                failover_hops[shard] = live[0]
            else:
                lost_shards.add(shard)
    lost_tables = tuple(
        sorted(i for shard in lost_shards for i in plan.tables_of(shard))
    )
    shard_path_seconds = [
        0.0
        if shard in lost_shards
        else failover_hops[shard] * network.rtt_s + shard_seconds[shard]
        for shard in range(plan.num_shards)
    ]

    # Pooled embedding vectors travel to the aggregator (links in parallel,
    # so the largest single shard payload bounds the transfer).
    payloads = []
    for shard in range(plan.num_shards):
        if shard in lost_shards:
            continue
        dims = sum(sls_specs[i].embedding_dim for i in plan.tables_of(shard))
        payloads.append(batch_size * dims * 4)
    network_seconds = (
        max(network.transfer_s(p) for p in payloads)
        if plan.num_shards > 1 and payloads
        else 0.0
    )

    dense_seconds = sum(
        timing.op_time(spec, batch_size).seconds
        for spec in specs
        if spec.op_type != OP_SLS
    )
    result = DistributedLatency(
        model_name=config.name,
        num_shards=plan.num_shards,
        batch_size=batch_size,
        slowest_shard_seconds=max(shard_path_seconds),
        network_seconds=network_seconds,
        dense_seconds=dense_seconds,
        failover_hops=sum(failover_hops),
        lost_tables=lost_tables,
    )

    recorder = as_tracer(tracer)
    if recorder.enabled:
        aggregator_track = plan.num_shards
        recorder.set_track_name(aggregator_track, "aggregator")
        fanout_id = recorder.begin(
            "serving.shard.fanout",
            0.0,
            track=aggregator_track,
            num_shards=plan.num_shards,
            batch_size=batch_size,
        )
        for shard, shard_s in enumerate(shard_path_seconds):
            recorder.set_track_name(shard, f"shard {shard}")
            recorder.complete(
                "serving.shard.sls",
                0.0,
                shard_s,
                parent_id=fanout_id,
                track=shard,
                tables=len(plan.tables_of(shard)),
            )
        if replication is not None:
            for shard in range(plan.num_shards):
                if shard in lost_shards:
                    recorder.instant(
                        "serving.domains.loss", 0.0, track=shard, shard=shard
                    )
                elif failover_hops[shard]:
                    recorder.instant(
                        "serving.domains.failover",
                        0.0,
                        track=shard,
                        hops=failover_hops[shard],
                    )
        gather_seconds = result.slowest_shard_seconds
        dense_begin_seconds = gather_seconds + network_seconds
        if network_seconds > 0:
            recorder.complete(
                "serving.shard.network",
                gather_seconds,
                dense_begin_seconds,
                parent_id=fanout_id,
                track=aggregator_track,
            )
        recorder.complete(
            "serving.shard.dense",
            dense_begin_seconds,
            result.total_seconds,
            parent_id=fanout_id,
            track=aggregator_track,
        )
        recorder.end(fanout_id, result.total_seconds)
    return result


def sharding_sweep(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    shard_counts: list[int],
    network: NetworkConfig = NetworkConfig(),
) -> list[DistributedLatency]:
    """Latency across shard counts (the scaling curve)."""
    return [
        distributed_latency(
            server, config, batch_size, shard_tables(config, n), network
        )
        for n in shard_counts
    ]


# ------------------------------------------------- partial fan-out quality


def partial_fanout_config(
    config: ModelConfig, lost_tables: Sequence[int]
) -> ModelConfig:
    """The model actually served when ``lost_tables`` are unreachable.

    Each lost table's sparse lookups collapse to a single pooled
    fallback vector (the cached default embedding every production stack
    keeps warm), mirroring how
    :func:`~repro.serving.faults.truncate_lookups` models degraded mode
    — so the quality price flows through the same
    :func:`~repro.serving.faults.degraded_quality` machinery.
    """
    lost = sorted(set(lost_tables))
    if not lost:
        return config
    if lost[0] < 0 or lost[-1] >= len(config.embedding_tables):
        raise ValueError(
            f"lost tables {lost} outside model's "
            f"{len(config.embedding_tables)} tables"
        )
    lost_set = set(lost)
    tables = tuple(
        replace(t, lookups_per_sample=1) if i in lost_set else t
        for i, t in enumerate(config.embedding_tables)
    )
    return ModelConfig(
        name=f"{config.name}-partial{len(lost)}",
        model_class=config.model_class,
        dense_features=config.dense_features,
        bottom_mlp=config.bottom_mlp,
        embedding_tables=tables,
        top_mlp=config.top_mlp,
        dtype=config.dtype,
        interaction=config.interaction,
    )


def degraded_fanout_quality(
    config: ModelConfig,
    lost_tables: Sequence[int],
    num_candidates: int = 200,
    k: int = 10,
    seed: int = 0,
) -> dict[str, float]:
    """Ranking cost (recall@k / NDCG@k) of a partial fan-out read.

    Prices serving :func:`partial_fanout_config` instead of the full
    model through :func:`~repro.serving.faults.degraded_quality` — an
    empty ``lost_tables`` scores a perfect 1.0/1.0.
    """
    return degraded_quality(
        config,
        partial_fanout_config(config, lost_tables),
        num_candidates=num_candidates,
        k=k,
        seed=seed,
    )


# ------------------------------------------------------- shard recovery


def _merge_intervals(
    intervals: Sequence[tuple[float, float]],
) -> tuple[tuple[float, float], ...]:
    """Union of half-open intervals, sorted and coalesced."""
    merged: list[tuple[float, float]] = []
    for start_s, end_s in sorted(intervals):
        if merged and start_s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end_s))
        else:
            merged.append((start_s, end_s))
    return tuple(merged)


def _covers(intervals: Sequence[tuple[float, float]], t_s: float) -> bool:
    """True when ``t_s`` falls inside any half-open interval."""
    return any(start_s <= t_s < end_s for start_s, end_s in intervals)


@dataclass(frozen=True)
class ShardRecovery:
    """One shard copy re-replicated (or cold-reloaded) after a loss.

    ``source_host`` is the live copy that streamed the data, or ``None``
    when no copy survived and the shard was reloaded from cold storage.
    """

    shard: int
    copy_index: int
    target_host: int
    source_host: int | None
    lost_at_s: float
    start_s: float
    done_s: float
    shard_bytes: int


@dataclass(frozen=True)
class ServiceSegment:
    """One piecewise-constant window of shard serving state.

    Attributes:
        start_s / end_s: the window on the DES clock.
        max_failover_hops: worst first-live-copy index across shards —
            the extra round trips the slowest shard read pays.
        blackout: some shard has no live copy (reads go partial).
        lost_tables: tables unreachable during the window.
    """

    start_s: float
    end_s: float
    max_failover_hops: int
    blackout: bool
    lost_tables: tuple[int, ...]


@dataclass(frozen=True)
class RecoveryTimeline:
    """Copy availability over time plus the re-replication transfers.

    Built by :func:`recovery_timeline`; queries are pure functions of the
    committed state, so the timeline composes with both DES engines
    without touching them.
    """

    replication: ReplicationPlan
    bandwidth_bytes_per_s: float
    transfers: tuple[ShardRecovery, ...]
    copy_down_intervals: tuple[
        tuple[tuple[tuple[float, float], ...], ...], ...
    ]
    aborted_transfers: int = 0

    @property
    def time_to_full_redundancy_s(self) -> float:
        """When the last lost copy is back (0 when nothing was lost)."""
        return max((t.done_s for t in self.transfers), default=0.0)

    def copy_is_down(self, shard: int, copy_index: int, t_s: float) -> bool:
        """True while the copy is crashed, partitioned or re-streaming."""
        return _covers(self.copy_down_intervals[shard][copy_index], t_s)

    def availability_at(self, t_s: float) -> tuple[tuple[bool, ...], ...]:
        """``copy_available`` matrix for :func:`distributed_latency`."""
        return tuple(
            tuple(
                not self.copy_is_down(shard, copy_index, t_s)
                for copy_index in range(self.replication.replication_factor)
            )
            for shard in range(self.replication.plan.num_shards)
        )

    def service_segments(self, horizon_s: float) -> tuple[ServiceSegment, ...]:
        """Piecewise-constant serving state over ``[0, horizon_s)``.

        Segments with identical state are coalesced; a segment is a
        *blackout* when at least one shard has no live copy.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        bounds = {0.0, horizon_s}
        for per_copy in self.copy_down_intervals:
            for intervals in per_copy:
                for start_s, end_s in intervals:
                    if 0.0 < start_s < horizon_s:
                        bounds.add(start_s)
                    if 0.0 < end_s < horizon_s:
                        bounds.add(end_s)
        ordered = sorted(bounds)
        plan = self.replication.plan
        segments: list[ServiceSegment] = []
        for left_s, right_s in zip(ordered, ordered[1:]):
            mid_s = 0.5 * (left_s + right_s)
            hops = 0
            blackout = False
            lost: list[int] = []
            for shard in range(plan.num_shards):
                if not plan.tables_of(shard):
                    continue  # an empty shard serves nothing
                live = [
                    c
                    for c in range(self.replication.replication_factor)
                    if not self.copy_is_down(shard, c, mid_s)
                ]
                if live:
                    hops = max(hops, live[0])
                else:
                    blackout = True
                    lost.extend(plan.tables_of(shard))
            state = (hops, blackout, tuple(sorted(lost)))
            if segments and (
                segments[-1].max_failover_hops,
                segments[-1].blackout,
                segments[-1].lost_tables,
            ) == state:
                segments[-1] = replace(segments[-1], end_s=right_s)
            else:
                segments.append(
                    ServiceSegment(
                        start_s=left_s,
                        end_s=right_s,
                        max_failover_hops=state[0],
                        blackout=state[1],
                        lost_tables=state[2],
                    )
                )
        return tuple(segments)

    def blackout_s(self, horizon_s: float) -> float:
        """Total time within the horizon some shard had no live copy."""
        return sum(
            seg.end_s - seg.start_s
            for seg in self.service_segments(horizon_s)
            if seg.blackout
        )


def recovery_timeline(
    server: ServerSpec,
    config: ModelConfig,
    replication: ReplicationPlan,
    topology: FleetTopology,
    events: DomainSchedule,
    network: NetworkConfig = NetworkConfig(),
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
    metrics_labels: dict[str, str] | None = None,
) -> RecoveryTimeline:
    """Re-replicate crash-lost shard copies on the DES clock.

    Semantics (Kalamkar et al., arXiv:2005.04680 — shard recovery is a
    bulk transfer, not a restart):

    * A :class:`~repro.serving.domains.DomainCrash` destroys every copy
      on the domain's hosts; each host restarts *cold* at crash end and
      re-streams its copies from the shard's first live copy at
      ``min(NIC, DRAM)`` bandwidth, serializing on both endpoints' NICs.
      With no live copy the shard reloads from cold storage at the same
      bandwidth (so time-to-full-redundancy is always finite).
    * A :class:`~repro.serving.domains.DomainPartition` leaves state
      intact: copies inside are unavailable for the interval and live
      again the instant it heals — no transfer.
    * A crash landing before a copy finished re-streaming aborts the
      transfer and restarts it after the new outage (counted in
      ``aborted_transfers``). Source selection uses crash-interval
      knowledge; a source itself mid-restore can be chosen optimistically
      when losses interleave tightly.
    """
    events.validate(topology)
    replication.validate(topology)
    bandwidth_bytes_per_s = min(
        network.bandwidth_bytes_per_s, server.dram_bw_bytes_per_s
    )
    plan = replication.plan
    shard_bytes = [
        sum(
            config.embedding_tables[i].storage_bytes(config.dtype)
            for i in plan.tables_of(shard)
        )
        for shard in range(plan.num_shards)
    ]

    host_crash_intervals: dict[int, tuple[tuple[float, float], ...]] = {}
    raw_crashes: dict[int, list[tuple[float, float]]] = {}
    for crash in events.crashes:
        for host in topology.hosts_in(crash.kind, crash.domain_id):
            raw_crashes.setdefault(host, []).append(
                (crash.at_s, crash.at_s + crash.downtime_s)
            )
    for host, intervals in raw_crashes.items():
        host_crash_intervals[host] = _merge_intervals(intervals)
    host_partition_intervals: dict[int, tuple[tuple[float, float], ...]] = {}
    raw_partitions: dict[int, list[tuple[float, float]]] = {}
    for part in events.partitions:
        for host in topology.hosts_in(part.kind, part.domain_id):
            raw_partitions.setdefault(host, []).append(
                (part.start_s, part.start_s + part.duration_s)
            )
    for host, intervals in raw_partitions.items():
        host_partition_intervals[host] = _merge_intervals(intervals)

    copies = [
        (shard, copy_index)
        for shard in range(plan.num_shards)
        for copy_index in range(replication.replication_factor)
    ]
    committed: dict[tuple[int, int], list[tuple[float, float]]] = {
        key: [] for key in copies
    }
    consumed_until: dict[tuple[int, int], float] = {key: 0.0 for key in copies}
    episodes_by_copy = {
        key: host_crash_intervals.get(replication.copy_hosts[key[0]][key[1]], ())
        for key in copies
    }

    def source_for(shard: int, copy_index: int, t_s: float) -> int | None:
        for other in range(replication.replication_factor):
            if other == copy_index:
                continue
            host = replication.copy_hosts[shard][other]
            if _covers(host_crash_intervals.get(host, ()), t_s):
                continue
            if _covers(host_partition_intervals.get(host, ()), t_s):
                continue
            if _covers(committed[(shard, other)], t_s):
                continue
            return host
        return None

    busy_until_s: dict[int, float] = {}
    transfers: list[ShardRecovery] = []
    aborted = 0
    episode_queue = sorted(
        (interval[0], interval[1], shard, copy_index)
        for (shard, copy_index), intervals in episodes_by_copy.items()
        for interval in intervals
    )
    for crash_start_s, crash_end_s, shard, copy_index in episode_queue:
        key = (shard, copy_index)
        if crash_start_s < consumed_until[key]:
            continue  # merged into an earlier episode of this copy
        target_host = replication.copy_hosts[shard][copy_index]
        restart_s = crash_end_s
        while True:
            source_host = source_for(shard, copy_index, restart_s)
            start_s = max(restart_s, busy_until_s.get(target_host, 0.0))
            if source_host is not None:
                start_s = max(start_s, busy_until_s.get(source_host, 0.0))
            done_s = start_s + shard_bytes[shard] / bandwidth_bytes_per_s
            follow = next(
                (
                    iv
                    for iv in episodes_by_copy[key]
                    if crash_start_s < iv[0] < done_s
                    and iv[0] >= consumed_until[key]
                ),
                None,
            )
            if follow is None:
                break
            # The host crashed again mid-restream: abort, restart after.
            aborted += 1
            restart_s = follow[1]
            consumed_until[key] = follow[1]
        busy_until_s[target_host] = done_s
        if source_host is not None:
            busy_until_s[source_host] = done_s
        committed[key].append((crash_start_s, done_s))
        consumed_until[key] = done_s
        transfers.append(
            ShardRecovery(
                shard=shard,
                copy_index=copy_index,
                target_host=target_host,
                source_host=source_host,
                lost_at_s=crash_start_s,
                start_s=start_s,
                done_s=done_s,
                shard_bytes=shard_bytes[shard],
            )
        )

    copy_down_intervals = tuple(
        tuple(
            _merge_intervals(
                committed[(shard, copy_index)]
                + list(
                    host_partition_intervals.get(
                        replication.copy_hosts[shard][copy_index], ()
                    )
                )
            )
            for copy_index in range(replication.replication_factor)
        )
        for shard in range(plan.num_shards)
    )
    timeline = RecoveryTimeline(
        replication=replication,
        bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        transfers=tuple(transfers),
        copy_down_intervals=copy_down_intervals,
        aborted_transfers=aborted,
    )

    recorder = as_tracer(tracer)
    if recorder.enabled:
        for transfer in timeline.transfers:
            recorder.instant(
                "serving.domains.loss",
                transfer.lost_at_s,
                track=transfer.target_host,
                shard=transfer.shard,
                copy=transfer.copy_index,
            )
            recorder.complete(
                "serving.domains.transfer",
                transfer.start_s,
                transfer.done_s,
                track=transfer.target_host,
                shard=transfer.shard,
                copy=transfer.copy_index,
                source=-1 if transfer.source_host is None else transfer.source_host,
                payload_bytes=transfer.shard_bytes,
            )
    if metrics is not None:
        labels = dict(metrics_labels or {})
        metrics.counter("serving.domains.lost_copies", **labels).inc(
            len(timeline.transfers)
        )
        metrics.counter("serving.domains.transfers", **labels).inc(
            sum(1 for t in timeline.transfers if t.source_host is not None)
        )
        metrics.counter("serving.domains.cold_reloads", **labels).inc(
            sum(1 for t in timeline.transfers if t.source_host is None)
        )
        metrics.counter("serving.domains.aborted_transfers", **labels).inc(aborted)
        metrics.gauge("serving.domains.time_to_redundancy_s", **labels).set(
            timeline.time_to_full_redundancy_s
        )
    return timeline
