"""Discrete-event simulation of co-located inference serving.

The paper's production observations (Section VI.A / Figure 11) come from a
serving environment where a machine hosts many model instances, each fed by
its own request stream. Because the instantaneous number of *active* jobs
fluctuates, the effective contention state — and therefore each operator's
latency — fluctuates with it, producing Broadwell's multi-modal FC latency
distribution and its steep p99 growth under high co-location.

:class:`ServingSimulator` reproduces that environment: ``num_instances``
model replicas on one socket, each receiving Poisson arrivals (open loop)
or re-issuing immediately (closed loop). Service times come from the
:class:`~repro.hw.timing.TimingModel` evaluated at the dispatch-time active
count, with multiplicative lognormal noise whose spread grows with
contention (and faster on inclusive hierarchies).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.distributions import LatencySummary, summarize
from ..config.model_config import ModelConfig
from ..core.graph import config_ops
from ..core.operators.base import OP_FC, OP_SLS
from ..hw.colocation import ColocationState
from ..hw.server import ServerSpec
from ..hw.timing import ModelLatency, TimingModel
from ..obs.tracer import as_tracer
from .overload import SHED_CODEL, SHED_DEADLINE, SHED_OLDEST, SHED_QUEUE_FULL

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.profile import OpProfiler
    from ..obs.tracer import NullTracer, Tracer
    from .faults import FaultSchedule
    from .multimodel import MultiModelPool
    from .overload import OverloadConfig

#: Baseline multiplicative latency noise (OS jitter, clock, queue probes).
BASE_NOISE_SIGMA = 0.04

#: Additional noise per unit of LLC churn, by hierarchy type. Inclusive
#: hierarchies (Haswell/Broadwell) suffer noisier latency under contention
#: because back-invalidations strike unpredictably. Kept below the spacing
#: of the co-location latency levels so the Figure-11a modes stay separable.
CONTENTION_NOISE_INCLUSIVE = 0.08
CONTENTION_NOISE_EXCLUSIVE = 0.03


def stable_fc_seed(input_dim: int, output_dim: int) -> int:
    """Process-stable RNG seed for an FC-probe dimension pair.

    Replaces ``hash((input_dim, output_dim))``: ``hash()`` is an
    interpreter detail — stable for ints only by accident of
    implementation, and ``PYTHONHASHSEED``-salted the moment a dimension
    arrives as anything str-like — so the probe's noise stream was
    silently coupled to interpreter state. This spread (two large odd
    multipliers, xor-mixed) is explicit, deterministic everywhere, and
    keeps distinct dimension pairs on distinct streams.
    """
    if input_dim < 1 or output_dim < 1:
        raise ValueError("FC dimensions must be positive")
    return (input_dim * 73_856_093 ^ output_dim * 19_349_663) % (2**32)


@dataclass(frozen=True)
class InferenceRecord:
    """One completed inference in the simulation."""

    instance_id: int
    arrival_s: float
    start_s: float
    end_s: float
    active_jobs: int
    service_s: float

    @property
    def latency_s(self) -> float:
        """Queueing delay + service time."""
        return self.end_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting for the instance to become free."""
        return self.start_s - self.arrival_s


@dataclass
class SimulationResult:
    """Outcome of one serving simulation.

    ``offered`` counts every arrival the simulation generated (including
    closed-loop re-issues); ``killed`` counts inferences lost in flight to
    a replica crash. Both are zero-fault-compatible: without a fault
    schedule ``killed`` is 0 and every offered arrival eventually
    completes or is still queued at the horizon.

    ``shed`` counts arrivals dropped by admission control (0 without an
    overload config), and ``max_queue_depth`` is the deepest per-instance
    backlog observed — the overload-onset signal, tracked even with
    protection off. Conservation: ``offered = completed + shed + killed +
    in-flight/queued at the horizon``.
    """

    server_name: str
    model_name: str
    batch_size: int
    num_instances: int
    duration_s: float
    #: Completed inferences: a ``list[InferenceRecord]`` from the reference
    #: engine (and observed vectorized runs), or a duck-compatible
    #: :class:`~repro.serving.des.RecordBatch` (SoA) from unobserved
    #: vectorized runs — same elements, same order, same floats.
    records: Sequence[InferenceRecord]
    offered: int = 0
    killed: int = 0
    downtime_s: float = 0.0
    shed: int = 0
    max_queue_depth: int = 0

    def latencies_s(self) -> np.ndarray:
        """End-to-end latency of every completed inference."""
        fast = getattr(self.records, "latencies_s", None)
        if fast is not None:
            return fast()
        return np.array([r.latency_s for r in self.records], dtype=np.float64)

    def service_times_s(self) -> np.ndarray:
        """Service time (excluding queueing) of every inference."""
        fast = getattr(self.records, "service_times_s", None)
        if fast is not None:
            return fast()
        return np.array([r.service_s for r in self.records], dtype=np.float64)

    def summary(self) -> LatencySummary:
        """Percentile summary of end-to-end latencies."""
        return summarize(self.latencies_s())

    def throughput_items_per_s(self) -> float:
        """Items ranked per second across all instances."""
        if not self.records:
            return 0.0
        return len(self.records) * self.batch_size / self.duration_s

    def active_job_counts(self) -> np.ndarray:
        """Active co-located jobs observed at each dispatch."""
        fast = getattr(self.records, "active_job_counts", None)
        if fast is not None:
            return fast()
        return np.array([r.active_jobs for r in self.records], dtype=np.int64)

    def availability(self) -> float:
        """Fraction of offered arrivals that completed (1.0 when idle)."""
        if self.offered == 0:
            return 1.0
        return len(self.records) / self.offered


class ServingSimulator:
    """Simulates co-located model instances on one server socket.

    Args:
        server: server generation.
        config: the model each instance serves.
        batch_size: items per inference.
        num_instances: co-located replicas (one per physical core, as in the
            paper's experiments).
        per_instance_qps: open-loop Poisson arrival rate per instance;
            ``None`` runs closed-loop (every instance always busy).
        hyperthreading: two instances per physical core.
        seed: RNG seed.
        faults: optional :class:`~repro.serving.faults.FaultSchedule`
            injected on this machine's event clock. Crashes kill the
            in-flight inference and park the instance; stragglers and
            bandwidth dips multiply service times. A zero schedule (or
            ``None``) reproduces the fault-free run record-for-record —
            fault handling never touches the main RNG stream.
        tracer: optional :class:`~repro.obs.tracer.Tracer`. When set, each
            completed inference is recorded as a ``serving.sim.request``
            span with ``queue``/``service`` children and per-operator leaf
            spans, all on the DES clock (one track per instance). The
            default nil tracer records nothing; tracing never touches the
            RNG stream, so tracing off is bit-identical to the historical
            simulator.
        profiler: optional :class:`~repro.obs.profile.OpProfiler`; every
            completed inference's realized service time is attributed to
            its per-operator shares (the Figure-4 view of the run).
        overload: optional
            :class:`~repro.serving.overload.OverloadConfig`. Only the
            ``admission`` leg applies here: each instance's queue is
            bounded with the configured shed policy plus an optional
            CoDel sojourn controller. Circuit breakers and brownout are
            fleet/router concerns (no alternative replica, no quality
            tiers on this co-location model) and raise ``ValueError``.
            ``None`` (the default) reproduces the unbounded run
            record-for-record — admission never touches the RNG stream.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            after every :meth:`run` records the ``serving.queue.depth``
            gauge (backlog left at the horizon), the
            ``serving.queue.max_depth`` gauge, and the
            ``serving.overload.shed`` counter.
        engine: DES engine (:data:`repro.serving.des.ENGINES`).
            ``"reference"`` runs the per-event loop below (the executable
            spec); ``"vectorized"`` runs the batched SoA engine in
            :mod:`repro.serving.des`, bit-identical on records, stats,
            spans and RNG stream.
        backend: vectorized-engine backend
            (:data:`repro.serving.des.BACKENDS`): ``"auto"`` tries the
            self-compiled C kernel and falls back to batched python,
            ``"python"`` forces the fallback, ``"native"`` requires the
            kernel. Ignored by the reference engine. After each run,
            :attr:`last_backend` records which path actually executed.
    """

    def __init__(
        self,
        server: ServerSpec,
        config: ModelConfig,
        batch_size: int,
        num_instances: int,
        per_instance_qps: float | None = None,
        hyperthreading: bool = False,
        seed: int = 0,
        faults: "FaultSchedule | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        profiler: "OpProfiler | None" = None,
        overload: "OverloadConfig | None" = None,
        metrics: "MetricsRegistry | None" = None,
        engine: str = "reference",
        backend: str = "auto",
        pool: "MultiModelPool | None" = None,
    ) -> None:
        from .des import validate_backend, validate_engine

        if num_instances < 1:
            raise ValueError("need at least one instance")
        if pool is not None and config.name not in pool.model_names:
            raise ValueError(
                f"model {config.name!r} is not registered in the "
                f"multi-model pool {pool.model_names}"
            )
        #: Optional :class:`~repro.serving.multimodel.MultiModelPool` this
        #: single-model run belongs to. The pool is a capacity contract —
        #: construction already proved the model fits a replica resident —
        #: plus an observability hook; it never perturbs the simulation
        #: (a run with a pool is record-for-record identical to one
        #: without). Cross-model dispatch lives in
        #: :class:`~repro.serving.multimodel.MultiModelRouter`.
        self.pool = pool
        if per_instance_qps is not None and per_instance_qps <= 0:
            raise ValueError("per_instance_qps must be positive")
        self.engine = validate_engine(engine)
        self.backend = validate_backend(backend)
        #: Execution path of the most recent :meth:`run`: ``"reference"``,
        #: ``"python"`` (batched loop) or ``"native"`` (C kernel).
        self.last_backend: str | None = None
        if overload is not None and (
            overload.breaker is not None or overload.brownout is not None
        ):
            raise ValueError(
                "ServingSimulator supports only admission control; circuit "
                "breakers and brownout live in ResilientRouter"
            )
        self.overload = overload
        self.metrics = metrics
        self.server = server
        self.config = config
        self.batch_size = batch_size
        self.num_instances = num_instances
        self.per_instance_qps = per_instance_qps
        self.hyperthreading = hyperthreading
        self.faults = faults
        self.tracer = as_tracer(tracer)
        self.profiler = profiler
        self.timing = TimingModel(server)
        self._rng = np.random.default_rng(seed)
        self._resident = self.timing.resident_bytes(config)
        self._traffic = self.timing.estimate_random_traffic_gbps(config, batch_size)
        #: Memory-bound share of an uncontended inference: the part a
        #: DRAM-bandwidth fault stretches (SLS dominates DRAM traffic).
        self._memory_fraction = (
            self._base_latency(1).fraction_by_op_type().get(OP_SLS, 0.0)
        )
        #: Per-request bytes touched per operator class, mirroring the
        #: TimingModel's byte accounting (filled lazily for the profiler).
        self._bytes_by_op_cache: dict[str, float] | None = None

    # ------------------------------------------------------- observability

    def _request_bytes_by_op(self) -> dict[str, float]:
        """Bytes one inference touches, grouped by operator class."""
        if self._bytes_by_op_cache is None:
            out: dict[str, float] = {}
            for spec in config_ops(self.config):
                if spec.op_type == OP_SLS:
                    row_bytes = max(64, spec.embedding_dim * spec.dtype_bytes)
                    moved = self.batch_size * spec.lookups_per_sample * row_bytes
                elif spec.op_type == OP_FC:
                    moved = (
                        spec.weight_bytes
                        + self.batch_size * spec.activation_bytes_per_sample
                    )
                else:
                    moved = self.batch_size * spec.activation_bytes_per_sample
                out[spec.op_type] = out.get(spec.op_type, 0.0) + moved
            self._bytes_by_op_cache = out
        return self._bytes_by_op_cache

    def _observe_completion(self, record: InferenceRecord) -> None:
        """Feed one completed inference to the tracer and profiler.

        Purely observational: called after the record is final, touching
        neither the RNG stream nor the event queue, so runs with the nil
        tracer and no profiler are bit-identical to uninstrumented ones.
        """
        base = self._base_latency(record.active_jobs)
        if self.profiler is not None:
            self.profiler.record_request(
                base,
                self.server.frequency_ghz,
                actual_seconds=record.service_s,
                bytes_by_op=self._request_bytes_by_op(),
            )
        tracer = self.tracer
        if not tracer.enabled:
            return
        track = record.instance_id
        request_id = tracer.begin(
            "serving.sim.request",
            record.arrival_s,
            track=track,
            active_jobs=record.active_jobs,
        )
        if record.queue_s > 0:
            tracer.complete(
                "serving.sim.queue",
                record.arrival_s,
                record.start_s,
                parent_id=request_id,
                track=track,
            )
        service_id = tracer.complete(
            "serving.sim.service",
            record.start_s,
            record.end_s,
            parent_id=request_id,
            track=track,
        )
        # Leaf op spans: the analytic per-op shares at this dispatch's
        # contention level, scaled so they tile the realized service time.
        scale = (
            record.service_s / base.total_seconds if base.total_seconds > 0 else 0.0
        )
        cursor_s = record.start_s
        for op in base.per_op:
            op_end_s = cursor_s + op.seconds * scale
            tracer.complete(
                f"serving.op.{op.op_type.lower()}",
                cursor_s,
                op_end_s,
                parent_id=service_id,
                track=track,
                op=op.name,
            )
            cursor_s = op_end_s
        tracer.end(request_id, record.end_s)

    # ------------------------------------------------------------- services

    def state_for(self, active_jobs: int) -> ColocationState:
        """Contention state when ``active_jobs`` instances are running."""
        return ColocationState(
            num_jobs=max(1, active_jobs),
            hyperthreading=self.hyperthreading,
            resident_bytes_per_job=self._resident,
            corunner_random_gbps=self._traffic,
        )

    @lru_cache(maxsize=None)
    def _base_latency(self, active_jobs: int) -> ModelLatency:
        return self.timing.model_latency(
            self.config, self.batch_size, self.state_for(active_jobs)
        )

    def noise_sigma(self, active_jobs: int) -> float:
        """Lognormal sigma of the service-time noise at a contention level."""
        churn = self.timing.contention.llc_churn(self.state_for(active_jobs))
        per_churn = (
            CONTENTION_NOISE_INCLUSIVE
            if self.server.inclusive_llc
            else CONTENTION_NOISE_EXCLUSIVE
        )
        return BASE_NOISE_SIGMA + per_churn * churn

    def sample_service_s(self, active_jobs: int, rng: np.random.Generator) -> float:
        """Draw one noisy service time at the given active count."""
        base = self._base_latency(active_jobs).total_seconds
        sigma = self.noise_sigma(active_jobs)
        return base * float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))

    # ------------------------------------------------------------------ run

    def run(self, duration_s: float = 1.0) -> SimulationResult:
        """Simulate ``duration_s`` of serving; returns completed inferences.

        Dispatches on ``engine=``: the reference loop below is the
        executable spec; the vectorized engine reproduces it bit for bit
        (``tests/test_des_equivalence.py``).
        """
        if self.engine == "vectorized":
            from .des import run_simulator_vectorized

            result = run_simulator_vectorized(self, duration_s)
        else:
            self.last_backend = "reference"
            result = self._run_reference(duration_s)
        if self.pool is not None and self.metrics is not None:
            self.metrics.gauge(
                "serving.multimodel.capacity_slots", model=self.config.name
            ).set(float(self.pool.total_slots))
        return result

    def _run_reference(self, duration_s: float) -> SimulationResult:
        """The per-event reference loop (the executable spec)."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = self._rng
        faults = self.faults
        fault_active = faults is not None and not faults.is_zero
        # Per-instance FIFO: next arrival stream.
        arrivals: list[list[float]] = []
        for i in range(self.num_instances):
            if self.per_instance_qps is None:
                arrivals.append([float(rng.uniform(0, 1e-4))])
            else:
                times = []
                t = 0.0
                while True:
                    t += float(rng.exponential(1.0 / self.per_instance_qps))
                    if t >= duration_s:
                        break
                    times.append(t)
                arrivals.append(times)

        # Event queue holds (time, seq, kind, instance, epoch); kinds:
        # 0 arrival, 1 completion, 2 replica crash, 3 replica restart.
        # The per-instance epoch invalidates the completion event of an
        # inference killed in flight by a crash. With no fault schedule no
        # crash/restart events exist and the loop below consumes the RNG
        # stream exactly as the fault-free simulator did.
        events: list[tuple[float, int, int, int, int]] = []
        seq = 0
        for i, times in enumerate(arrivals):
            for t in times:
                heapq.heappush(events, (t, seq, 0, i, 0))
                seq += 1
        offered = seq
        if fault_active:
            assert faults is not None
            for edge_t_s, replica_id, goes_down in faults.transition_events(
                self.num_instances
            ):
                heapq.heappush(
                    events, (edge_t_s, seq, 2 if goes_down else 3, replica_id, 0)
                )
                seq += 1

        tracer = self.tracer
        observing = tracer.enabled or self.profiler is not None
        if tracer.enabled:
            for i in range(self.num_instances):
                tracer.set_track_name(i, f"instance {i}")

        busy = [False] * self.num_instances
        down = [False] * self.num_instances
        epoch = [0] * self.num_instances
        killed = 0
        queues: list[list[float]] = [[] for _ in range(self.num_instances)]
        current: list[InferenceRecord | None] = [None] * self.num_instances
        records: list[InferenceRecord] = []

        # Admission control (overload protection). With ``overload=None``
        # every branch below is skipped and the queues stay unbounded —
        # admission decisions are pure functions of the queue state and
        # never touch the RNG stream, so protection-off runs reproduce
        # the historical simulator record-for-record.
        admission = self.overload.admission if self.overload is not None else None
        codels = (
            [admission.make_codel() for _ in range(self.num_instances)]
            if admission is not None
            else None
        )
        shed = 0
        max_queue_depth = 0

        def shed_one(instance: int, now: float, reason: str) -> None:
            nonlocal shed
            shed += 1
            if tracer.enabled:
                tracer.instant(
                    "serving.overload.shed", now, track=instance, reason=reason
                )

        def admit(instance: int, now: float) -> bool:
            """Apply the admission policy to one arrival that must queue."""
            assert admission is not None
            depth = len(queues[instance])
            if (
                admission.shed_policy == "deadline_aware"
                and admission.deadline_s is not None
            ):
                # Dead on arrival: the backlog ahead (queue + in-flight)
                # plus its own service already exceeds the deadline.
                expected_s = self._base_latency(sum(busy) + 1).total_seconds
                if (depth + 2) * expected_s > admission.deadline_s:
                    shed_one(instance, now, SHED_DEADLINE)
                    return False
            if depth >= admission.queue_capacity:
                if admission.shed_policy == "reject_oldest":
                    # LIFO-drain: evict the head (it has waited longest
                    # and is closest to its deadline) to admit the new.
                    queues[instance].pop(0)
                    shed_one(instance, now, SHED_OLDEST)
                    return True
                shed_one(instance, now, SHED_QUEUE_FULL)
                return False
            return True

        def next_arrival(instance: int, now: float) -> float | None:
            """Pop the queue head, letting CoDel shed standing delay."""
            while queues[instance]:
                arrival = queues[instance].pop(0)
                if (
                    codels is not None
                    and codels[instance] is not None
                    and codels[instance].on_dequeue(now - arrival, now)
                ):
                    shed_one(instance, now, SHED_CODEL)
                    continue
                return arrival
            return None

        def dispatch(instance: int, arrival: float, now: float) -> None:
            nonlocal seq
            active = sum(busy) + 1
            service = self.sample_service_s(active, rng)
            if fault_active:
                assert faults is not None
                service *= faults.service_multiplier(
                    instance, now, self._memory_fraction
                )
            busy[instance] = True
            current[instance] = InferenceRecord(
                instance_id=instance,
                arrival_s=arrival,
                start_s=now,
                end_s=now + service,
                active_jobs=active,
                service_s=service,
            )
            heapq.heappush(events, (now + service, seq, 1, instance, epoch[instance]))
            seq += 1

        while events:
            now, _, kind, instance, ev_epoch = heapq.heappop(events)
            if now >= duration_s and kind == 0:
                continue
            if kind == 0:  # arrival
                if busy[instance] or down[instance]:
                    if admission is not None and not admit(instance, now):
                        continue
                    queues[instance].append(now)
                    if len(queues[instance]) > max_queue_depth:
                        max_queue_depth = len(queues[instance])
                else:
                    dispatch(instance, now, now)
            elif kind == 1:  # completion
                if ev_epoch != epoch[instance]:
                    continue  # the inference was killed by a crash
                record = current[instance]
                assert record is not None
                records.append(record)
                if observing:
                    self._observe_completion(record)
                busy[instance] = False
                current[instance] = None
                if now >= duration_s:
                    continue
                arrival = next_arrival(instance, now)
                if arrival is not None:
                    dispatch(instance, arrival, now)
                elif self.per_instance_qps is None:
                    offered += 1
                    dispatch(instance, now, now)  # closed loop re-issue
            elif kind == 2:  # replica crash
                down[instance] = True
                epoch[instance] += 1
                if tracer.enabled:
                    tracer.instant("serving.sim.crash", now, track=instance)
                if busy[instance]:
                    killed += 1
                    if tracer.enabled:
                        dead = current[instance]
                        assert dead is not None
                        tracer.complete(
                            "serving.sim.request",
                            dead.arrival_s,
                            now,
                            track=instance,
                            active_jobs=dead.active_jobs,
                            outcome="killed",
                        )
                    busy[instance] = False
                    current[instance] = None
            else:  # kind == 3: replica restart
                down[instance] = False
                if tracer.enabled:
                    tracer.instant("serving.sim.restart", now, track=instance)
                if now >= duration_s:
                    continue
                arrival = next_arrival(instance, now)
                if arrival is not None:
                    dispatch(instance, arrival, now)
                elif self.per_instance_qps is None and not busy[instance]:
                    offered += 1
                    dispatch(instance, now, now)  # closed loop resumes

        downtime_s = 0.0
        if fault_active:
            assert faults is not None
            downtime_s = sum(
                faults.downtime_s(i, duration_s) for i in range(self.num_instances)
            )
        if self.metrics is not None:
            self.metrics.gauge("serving.queue.depth").set(
                float(sum(len(q) for q in queues))
            )
            self.metrics.gauge("serving.queue.max_depth").set(
                float(max_queue_depth)
            )
            self.metrics.counter("serving.overload.shed").inc(shed)
        return SimulationResult(
            server_name=self.server.name,
            model_name=self.config.name,
            batch_size=self.batch_size,
            num_instances=self.num_instances,
            duration_s=duration_s,
            records=records,
            offered=offered,
            killed=killed,
            downtime_s=downtime_s,
            shed=shed,
            max_queue_depth=max_queue_depth,
        )

    # --------------------------------------------------- operator-level view

    def fc_latency_samples(
        self,
        result: SimulationResult,
        input_dim: int,
        output_dim: int,
        fc_batch: int = 1,
    ) -> np.ndarray:
        """Latency samples of a standalone FC operator co-located with the
        simulated workload (the Figure 11 measurement).

        For each dispatch in ``result``, the FC runs under that dispatch's
        contention state; per-sample noise follows the same model as whole
        inferences.
        """
        weight_bytes = (input_dim * output_dim + output_dim) * 4
        act_bytes = fc_batch * (input_dim + output_dim) * 4
        flops = 2 * fc_batch * input_dim * output_dim
        n = len(result.records)
        samples = np.empty(n, dtype=np.float64)
        rng = np.random.default_rng(stable_fc_seed(input_dim, output_dim))
        # One chunked standard-normal draw replaces n scalar lognormal
        # calls bit for bit: each lognormal consumes exactly one normal
        # draw and equals exp(mean + sigma * z), and a chunked draw yields
        # the same z sequence as n scalar draws.
        normals = rng.standard_normal(n)
        actives = result.active_job_counts()
        base_cache: dict[int, tuple[float, float, float]] = {}
        for i in range(n):
            active = int(actives[i])
            cached = base_cache.get(active)
            if cached is None:
                base_s = self.timing.fc_time(
                    "fc-probe",
                    flops=flops,
                    weight_bytes=weight_bytes,
                    activation_bytes=act_bytes,
                    batch=fc_batch,
                    state=self.state_for(active),
                ).seconds
                sigma = self.noise_sigma(active)
                cached = (base_s, -0.5 * sigma**2, sigma)
                base_cache[active] = cached
            base_s, log_mean, sigma = cached
            samples[i] = base_s * math.exp(log_mean + sigma * normals[i])
        return samples
