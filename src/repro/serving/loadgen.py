"""Load generation for serving simulations.

Three modes:

* :class:`PoissonLoadGenerator` — open-loop arrivals at a target rate, the
  regime data-center front-ends see; exposes queueing delay.
* :class:`ClosedLoopLoadGenerator` — a fixed number of outstanding clients,
  each issuing a new query when the previous one completes; the regime the
  paper's co-location experiments run in (N models, each always busy).
* :class:`SpikeLoadGenerator` — open-loop Poisson with interval rate
  multipliers: the failover / retry-storm / flash-crowd traffic shapes the
  fault-injection layer (:mod:`repro.serving.faults`) stresses degraded
  fleets with.
* :class:`DiurnalLoadGenerator` — open-loop Poisson with a sinusoidal
  day/night baseline (the paper's fleets provision for the diurnal peak);
  accepts the same spikes as :class:`SpikeLoadGenerator`, so a flash
  crowd riding the evening peak is one seeded trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Query:
    """One inference request.

    Attributes:
        query_id: unique id.
        arrival_s: arrival time (seconds since simulation start).
        num_items: user-post pairs to rank (the batch this query carries).
    """

    query_id: int
    arrival_s: float
    num_items: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.num_items < 1:
            raise ValueError("a query must carry at least one item")


class PoissonLoadGenerator:
    """Open-loop Poisson arrivals.

    Args:
        rate_qps: mean arrival rate (queries per second).
        num_items: items per query.
        seed: RNG seed.
    """

    def __init__(self, rate_qps: float, num_items: int = 1, seed: int = 0) -> None:
        if rate_qps <= 0:
            raise ValueError("rate must be positive")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.rate_qps = rate_qps
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def generate(self, duration_s: float) -> list[Query]:
        """All queries arriving within ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        queries: list[Query] = []
        t = 0.0
        qid = 0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate_qps))
            if t >= duration_s:
                break
            queries.append(Query(query_id=qid, arrival_s=t, num_items=self.num_items))
            qid += 1
        return queries


@dataclass(frozen=True)
class LoadSpike:
    """One interval during which the offered rate is multiplied.

    Attributes:
        start_s: spike onset.
        duration_s: spike length.
        multiplier: rate multiplier while active (>= 0; a multiplier below
            1 models a brown-out where upstream sheds load).
    """

    start_s: float
    duration_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("spike interval must be non-negative/positive")
        if self.multiplier < 0:
            raise ValueError("spike multiplier must be non-negative")


def _thinned_arrivals(
    rng: np.random.Generator,
    rate_at,
    envelope_qps: float,
    duration_s: float,
    num_items: int,
) -> list[Query]:
    """Exact time-varying Poisson stream by thinning.

    Candidates are drawn at the constant ``envelope_qps`` and accepted
    with probability ``rate_at(t) / envelope_qps``. Both draws happen for
    every candidate, so the stream is fully determined by the generator's
    seed regardless of the rate profile.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    queries: list[Query] = []
    t = 0.0
    qid = 0
    while True:
        t += float(rng.exponential(1.0 / envelope_qps))
        if t >= duration_s:
            break
        accept = float(rng.uniform()) < rate_at(t) / envelope_qps
        if accept:
            queries.append(Query(query_id=qid, arrival_s=t, num_items=num_items))
            qid += 1
    return queries


class SpikeLoadGenerator:
    """Poisson arrivals whose rate jumps during configured spikes.

    Implemented by thinning: candidates are drawn at the maximum rate and
    accepted with probability ``rate(t) / max_rate``, so the stream is
    exact and fully determined by ``seed``.

    Args:
        base_qps: rate outside every spike.
        spikes: the rate-multiplier intervals (may overlap; multipliers
            compound).
        num_items: items per query.
        seed: RNG seed.
    """

    def __init__(
        self,
        base_qps: float,
        spikes: tuple[LoadSpike, ...] | list[LoadSpike] = (),
        num_items: int = 1,
        seed: int = 0,
    ) -> None:
        if base_qps <= 0:
            raise ValueError("rate must be positive")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.base_qps = base_qps
        self.spikes = tuple(spikes)
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def rate_at(self, t_s: float) -> float:
        """Instantaneous offered rate (qps) at time ``t_s``."""
        rate = self.base_qps
        for spike in self.spikes:
            if spike.start_s <= t_s < spike.start_s + spike.duration_s:
                rate *= spike.multiplier
        return rate

    def max_rate_qps(self) -> float:
        """Upper bound on the instantaneous rate (thinning envelope)."""
        rate = self.base_qps
        # Overlapping spikes compound, so the bound multiplies every
        # above-1 multiplier together.
        for spike in self.spikes:
            if spike.multiplier > 1.0:
                rate *= spike.multiplier
        return rate

    def generate(self, duration_s: float) -> list[Query]:
        """All queries arriving within ``duration_s``."""
        return _thinned_arrivals(
            self._rng, self.rate_at, self.max_rate_qps(), duration_s, self.num_items
        )


class DiurnalLoadGenerator:
    """Poisson arrivals riding a sinusoidal day/night cycle.

    The instantaneous rate is

    ``mean_qps * (1 + amplitude * sin(2π * (t - phase_s) / period_s))``

    times any active spike multipliers, realized exactly by thinning
    against the peak-rate envelope (same scheme as
    :class:`SpikeLoadGenerator`, same seeding guarantees). Composing a
    :class:`LoadSpike` onto the diurnal peak yields the flash-crowd
    traces the overload layer (:mod:`repro.serving.overload`) is
    stress-tested with.

    Args:
        mean_qps: cycle-average rate.
        amplitude: relative swing, in ``[0, 1]`` (1 means the trough
            reaches zero qps).
        period_s: cycle length (86400 for a literal day; simulations
            usually compress it).
        phase_s: time of the cycle's zero-crossing on the way up.
        spikes: rate-multiplier intervals, compounding with the sinusoid
            (and with each other where they overlap).
        num_items: items per query.
        seed: RNG seed.
    """

    def __init__(
        self,
        mean_qps: float,
        amplitude: float = 0.5,
        period_s: float = 86_400.0,
        phase_s: float = 0.0,
        spikes: tuple[LoadSpike, ...] | list[LoadSpike] = (),
        num_items: int = 1,
        seed: int = 0,
    ) -> None:
        if mean_qps <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.mean_qps = mean_qps
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s
        self.spikes = tuple(spikes)
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def rate_at(self, t_s: float) -> float:
        """Instantaneous offered rate (qps) at time ``t_s``."""
        rate = self.mean_qps * (
            1.0
            + self.amplitude
            * float(np.sin(2.0 * np.pi * (t_s - self.phase_s) / self.period_s))
        )
        for spike in self.spikes:
            if spike.start_s <= t_s < spike.start_s + spike.duration_s:
                rate *= spike.multiplier
        return rate

    def max_rate_qps(self) -> float:
        """Upper bound on the instantaneous rate (thinning envelope)."""
        rate = self.mean_qps * (1.0 + self.amplitude)
        for spike in self.spikes:
            if spike.multiplier > 1.0:
                rate *= spike.multiplier
        return rate

    def generate(self, duration_s: float) -> list[Query]:
        """All queries arriving within ``duration_s``."""
        return _thinned_arrivals(
            self._rng, self.rate_at, self.max_rate_qps(), duration_s, self.num_items
        )


class ClosedLoopLoadGenerator:
    """Closed-loop clients: a new query is issued on completion.

    This generator only fixes the initial arrivals (all clients issue at
    t=0 with a small jitter); the simulator re-issues on completion.
    """

    def __init__(self, num_clients: int, num_items: int = 1, seed: int = 0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_clients = num_clients
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def initial_queries(self) -> list[Query]:
        """One staggered initial query per client."""
        return [
            Query(
                query_id=i,
                arrival_s=float(self._rng.uniform(0.0, 1e-4)),
                num_items=self.num_items,
            )
            for i in range(self.num_clients)
        ]


@dataclass(frozen=True)
class MixedQuery(Query):
    """One inference request tagged with its model class.

    Attributes:
        model: name of the model class this request targets (must match a
            :class:`~repro.serving.multimodel.MultiModelPool` model).
    """

    model: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.model:
            raise ValueError("a mixed query needs a model class name")


@dataclass(frozen=True)
class ModelClassRate:
    """Diurnal traffic profile of one model class.

    Attributes:
        name: model class name (matches a pool model).
        mean_qps: cycle-average arrival rate for this class.
        amplitude: relative diurnal swing in ``[0, 1]``.
        phase_s: phase offset of this class's cycle — ranking and search
            traffic peak at different hours, which is what makes
            residency churn interesting.
    """

    name: str
    mean_qps: float
    amplitude: float = 0.5
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a model class needs a name")
        if self.mean_qps <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")


class MixedModelLoadGenerator:
    """Seeded mixed-model arrivals: one diurnal Poisson stream per class.

    Each class rides its own sinusoid (rate, amplitude, and phase per
    :class:`ModelClassRate`) over a shared period, realized exactly by
    thinning (same scheme and seeding guarantees as
    :class:`DiurnalLoadGenerator`), then the per-class streams are merged
    into one time-ordered trace of :class:`MixedQuery`. Every class draws
    from its own child generator seeded ``[seed, class_index]``, so the
    trace — including the per-class substreams — is a pure function of
    the seed and :meth:`generate` is repeatable call over call.

    Args:
        classes: one :class:`ModelClassRate` per model class.
        period_s: shared diurnal period (simulations usually compress it).
        num_items: items per query.
        seed: RNG seed.
    """

    def __init__(
        self,
        classes: tuple[ModelClassRate, ...] | list[ModelClassRate],
        period_s: float = 86_400.0,
        num_items: int = 1,
        seed: int = 0,
    ) -> None:
        if not classes:
            raise ValueError("need at least one model class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model class names: {names}")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.classes = tuple(classes)
        self.period_s = period_s
        self.num_items = num_items
        self.seed = seed

    def rate_at(self, t_s: float, class_index: int) -> float:
        """Instantaneous rate (qps) of one class at time ``t_s``."""
        cls = self.classes[class_index]
        return cls.mean_qps * (
            1.0
            + cls.amplitude
            * float(np.sin(2.0 * np.pi * (t_s - cls.phase_s) / self.period_s))
        )

    def max_rate_qps(self, class_index: int) -> float:
        """Thinning envelope of one class."""
        cls = self.classes[class_index]
        return cls.mean_qps * (1.0 + cls.amplitude)

    def generate_by_class(self, duration_s: float) -> dict[str, list[float]]:
        """Per-class arrival times — the substreams :meth:`generate` merges.

        The static-partitioning arm of the ``multimodel`` experiment
        feeds each class's substream to its own partition, so both arms
        see byte-identical per-class traffic.
        """
        streams: dict[str, list[float]] = {}
        for index, cls in enumerate(self.classes):
            rng = np.random.default_rng([self.seed, index])
            queries = _thinned_arrivals(
                rng,
                lambda t_s, i=index: self.rate_at(t_s, i),
                self.max_rate_qps(index),
                duration_s,
                self.num_items,
            )
            streams[cls.name] = [q.arrival_s for q in queries]
        return streams

    def generate(self, duration_s: float) -> list[MixedQuery]:
        """All queries within ``duration_s``, time-ordered across classes."""
        streams = self.generate_by_class(duration_s)
        tagged = [
            (t_s, index, cls.name)
            for index, cls in enumerate(self.classes)
            for t_s in streams[cls.name]
        ]
        tagged.sort(key=lambda item: (item[0], item[1]))
        return [
            MixedQuery(
                query_id=qid,
                arrival_s=t_s,
                num_items=self.num_items,
                model=name,
            )
            for qid, (t_s, _, name) in enumerate(tagged)
        ]
