"""Load generation for serving simulations.

Two standard modes:

* :class:`PoissonLoadGenerator` — open-loop arrivals at a target rate, the
  regime data-center front-ends see; exposes queueing delay.
* :class:`ClosedLoopLoadGenerator` — a fixed number of outstanding clients,
  each issuing a new query when the previous one completes; the regime the
  paper's co-location experiments run in (N models, each always busy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Query:
    """One inference request.

    Attributes:
        query_id: unique id.
        arrival_s: arrival time (seconds since simulation start).
        num_items: user-post pairs to rank (the batch this query carries).
    """

    query_id: int
    arrival_s: float
    num_items: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.num_items < 1:
            raise ValueError("a query must carry at least one item")


class PoissonLoadGenerator:
    """Open-loop Poisson arrivals.

    Args:
        rate_qps: mean arrival rate (queries per second).
        num_items: items per query.
        seed: RNG seed.
    """

    def __init__(self, rate_qps: float, num_items: int = 1, seed: int = 0) -> None:
        if rate_qps <= 0:
            raise ValueError("rate must be positive")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.rate_qps = rate_qps
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def generate(self, duration_s: float) -> list[Query]:
        """All queries arriving within ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        queries: list[Query] = []
        t = 0.0
        qid = 0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate_qps))
            if t >= duration_s:
                break
            queries.append(Query(query_id=qid, arrival_s=t, num_items=self.num_items))
            qid += 1
        return queries


class ClosedLoopLoadGenerator:
    """Closed-loop clients: a new query is issued on completion.

    This generator only fixes the initial arrivals (all clients issue at
    t=0 with a small jitter); the simulator re-issues on completion.
    """

    def __init__(self, num_clients: int, num_items: int = 1, seed: int = 0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_clients = num_clients
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def initial_queries(self) -> list[Query]:
        """One staggered initial query per client."""
        return [
            Query(
                query_id=i,
                arrival_s=float(self._rng.uniform(0.0, 1e-4)),
                num_items=self.num_items,
            )
            for i in range(self.num_clients)
        ]
