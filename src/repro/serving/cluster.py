"""Cluster-level scheduling across heterogeneous server generations.

The paper's introduction promises that its characterization "can be used to
maximize latency-bounded throughput by exploiting server heterogeneity when
scheduling inference requests". This module makes that concrete: a cluster
holds machines of several generations (Table II co-exist in production),
demand arrives as a weighted mix of model classes with SLAs, and a
scheduler decides which machines serve which models.

Two policies are compared:

* :func:`blind_capacity` — heterogeneity-blind: every machine serves the
  whole demand mix in proportion (what a generation-agnostic router does);
* :func:`aware_capacity` — heterogeneity-aware: a linear program assigns
  machine time to model classes to maximize the jointly-served demand
  scale, naturally routing memory-bound models to Skylake and
  latency-critical low-batch work to Broadwell.

Per-(machine, model) serving rates come from the SLA-optimal co-location
placement (:func:`repro.serving.scheduler.best_placement`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from .metrics import SLA
from .scheduler import best_placement


@dataclass(frozen=True)
class MachinePool:
    """Machines of one server generation."""

    server: ServerSpec
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("pool needs at least one machine")


@dataclass(frozen=True)
class WorkloadDemand:
    """One model class's share of cluster demand.

    Attributes:
        config: the model served.
        batch_size: serving batch.
        sla: latency bound for this service.
        weight: relative share of total demand (items/s); weights are
            normalized across the demand set.
    """

    config: ModelConfig
    batch_size: int
    sla: SLA
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("demand weight must be positive")


@dataclass(frozen=True)
class ClusterPlan:
    """Outcome of a scheduling policy on one cluster + demand mix.

    Attributes:
        policy: policy name.
        served_scale: the largest demand multiple lambda such that every
            demand d receives at least ``lambda x weight_d`` items/s.
        assignment: fraction of each pool's machine time per demand,
            ``assignment[pool_index][demand_index]``.
    """

    policy: str
    served_scale: float
    assignment: tuple[tuple[float, ...], ...]


def _rate_matrix(
    pools: list[MachinePool], demands: list[WorkloadDemand]
) -> np.ndarray:
    """items/s one machine of each pool sustains per demand (0 = infeasible)."""
    rates = np.zeros((len(pools), len(demands)))
    for i, pool in enumerate(pools):
        for j, demand in enumerate(demands):
            decision = best_placement(
                pool.server, demand.config, demand.batch_size, demand.sla
            )
            if decision is not None:
                rates[i, j] = decision.items_per_s
    return rates


def _normalized_weights(demands: list[WorkloadDemand]) -> np.ndarray:
    weights = np.array([d.weight for d in demands], dtype=np.float64)
    return weights / weights.sum()


def blind_capacity(
    pools: list[MachinePool], demands: list[WorkloadDemand]
) -> ClusterPlan:
    """Heterogeneity-blind serving: every machine runs the full mix.

    Each machine dedicates the demand's weight share of its time to that
    demand, regardless of how well its generation suits the model.
    """
    if not pools or not demands:
        raise ValueError("need at least one pool and one demand")
    rates = _rate_matrix(pools, demands)
    weights = _normalized_weights(demands)
    counts = np.array([p.count for p in pools], dtype=np.float64)
    served = weights * (counts @ rates)  # served items/s per demand
    with np.errstate(divide="ignore"):
        scale = float(np.min(np.where(weights > 0, served / weights, np.inf)))
    assignment = tuple(tuple(weights.tolist()) for _ in pools)
    return ClusterPlan(policy="blind", served_scale=scale, assignment=assignment)


def aware_capacity(
    pools: list[MachinePool], demands: list[WorkloadDemand]
) -> ClusterPlan:
    """Heterogeneity-aware serving via a linear program.

    Variables: x[i][j] = fraction of pool i's machine time on demand j,
    plus the served scale lambda. Maximize lambda subject to
    ``sum_i count_i x_ij rate_ij >= lambda * weight_j`` and
    ``sum_j x_ij <= 1``.
    """
    if not pools or not demands:
        raise ValueError("need at least one pool and one demand")
    rates = _rate_matrix(pools, demands)
    weights = _normalized_weights(demands)
    counts = np.array([p.count for p in pools], dtype=np.float64)
    n_pools, n_demands = rates.shape
    n_x = n_pools * n_demands

    # Objective: maximize lambda  (linprog minimizes).
    c = np.zeros(n_x + 1)
    c[-1] = -1.0

    # Demand constraints: lambda * w_j - sum_i count_i rate_ij x_ij <= 0.
    a_ub = np.zeros((n_demands + n_pools, n_x + 1))
    b_ub = np.zeros(n_demands + n_pools)
    for j in range(n_demands):
        for i in range(n_pools):
            a_ub[j, i * n_demands + j] = -counts[i] * rates[i, j]
        a_ub[j, -1] = weights[j]
    # Pool time budgets: sum_j x_ij <= 1.
    for i in range(n_pools):
        a_ub[n_demands + i, i * n_demands : (i + 1) * n_demands] = 1.0
        b_ub[n_demands + i] = 1.0

    bounds = [(0, 1)] * n_x + [(0, None)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError(f"scheduling LP failed: {result.message}")
    # Clip solver round-off (tiny negatives) out of the assignment.
    x = np.clip(result.x[:n_x], 0.0, 1.0).reshape(n_pools, n_demands)
    return ClusterPlan(
        policy="aware",
        served_scale=float(result.x[-1]),
        assignment=tuple(tuple(row.tolist()) for row in x),
    )


def heterogeneity_gain(
    pools: list[MachinePool], demands: list[WorkloadDemand]
) -> float:
    """Throughput multiplier of aware over blind scheduling."""
    blind = blind_capacity(pools, demands).served_scale
    aware = aware_capacity(pools, demands).served_scale
    if blind <= 0:
        return float("inf") if aware > 0 else 1.0
    return aware / blind


def survivable_capacity(
    pools: list[MachinePool],
    demands: list[WorkloadDemand],
    failures: list[int] | tuple[int, ...],
) -> ClusterPlan:
    """Aware-scheduled capacity after losing machines from each pool.

    ``failures[i]`` machines of pool ``i`` are down (a rack loss, a bad
    kernel rollout on one generation). Returns the re-optimized plan over
    the survivors; a fully dead cluster serves scale 0.
    """
    if len(failures) != len(pools):
        raise ValueError("need one failure count per pool")
    surviving: list[MachinePool] = []
    for pool, lost in zip(pools, failures):
        if lost < 0:
            raise ValueError("failure counts must be non-negative")
        if lost > pool.count:
            raise ValueError(
                f"cannot lose {lost} machines from a pool of {pool.count}"
            )
        if pool.count - lost >= 1:
            surviving.append(MachinePool(pool.server, pool.count - lost))
    if not surviving:
        return ClusterPlan(policy="aware-survivable", served_scale=0.0, assignment=())
    plan = aware_capacity(surviving, demands)
    return ClusterPlan(
        policy="aware-survivable",
        served_scale=plan.served_scale,
        assignment=plan.assignment,
    )


def worst_single_pool_loss(
    pools: list[MachinePool],
    demands: list[WorkloadDemand],
    lost_machines: int = 1,
) -> float:
    """Worst-case served scale after ``lost_machines`` die in any one pool.

    The N+k provisioning question: the scale a planner can still promise
    when any single generation loses that many machines at once.
    """
    if lost_machines < 0:
        raise ValueError("lost_machines must be non-negative")
    worst = float("inf")
    for i, pool in enumerate(pools):
        failures = [0] * len(pools)
        failures[i] = min(lost_machines, pool.count)
        worst = min(worst, survivable_capacity(pools, demands, failures).served_scale)
    return worst


def domain_failures(
    pools: list[MachinePool],
    topology,
    kind: str,
    domain_id: int,
) -> list[int]:
    """Per-pool machine-loss counts when one failure domain dies.

    Machines are indexed globally pool-by-pool in order (pool 0 holds
    replicas ``0..count0-1`` of the topology, and so on), so the
    topology's replica→domain assignment decides which pools the domain
    cuts across — the correlated-loss shape pool-granularity math
    cannot express.
    """
    total = sum(pool.count for pool in pools)
    if topology.num_replicas != total:
        raise ValueError(
            f"topology covers {topology.num_replicas} replicas, pools "
            f"hold {total} machines"
        )
    victims = set(topology.replicas_in(kind, domain_id))
    failures = []
    first = 0
    for pool in pools:
        failures.append(
            sum(1 for r in range(first, first + pool.count) if r in victims)
        )
        first += pool.count
    return failures


def domain_survivable_capacity(
    pools: list[MachinePool],
    demands: list[WorkloadDemand],
    topology,
    kind: str,
    domain_id: int,
) -> ClusterPlan:
    """Aware-scheduled capacity after one failure domain dies.

    The domain-granularity sibling of :func:`survivable_capacity`:
    instead of assuming losses align with generation pools, the blast
    radius comes from a :class:`~repro.serving.domains.FleetTopology`.
    With a one-rack-per-pool topology this reduces exactly to the
    whole-pool loss of the pool-granularity path (cross-checked in
    tests).
    """
    return survivable_capacity(
        pools, demands, domain_failures(pools, topology, kind, domain_id)
    )


def worst_single_domain_loss(
    pools: list[MachinePool],
    demands: list[WorkloadDemand],
    topology,
    kind: str,
) -> float:
    """Worst-case served scale after any single domain of ``kind`` dies.

    The domain-granularity sibling of :func:`worst_single_pool_loss`:
    the scale a planner can still promise when any one host, rack or
    zone goes dark at once.
    """
    worst = float("inf")
    for domain_id in range(topology.num_domains(kind)):
        worst = min(
            worst,
            domain_survivable_capacity(
                pools, demands, topology, kind, domain_id
            ).served_scale,
        )
    return worst
