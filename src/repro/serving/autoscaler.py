"""Reactive autoscaling of inference replicas under diurnal load.

Recommendation traffic follows the day/night cycle; capacity planners trade
machine-hours against SLA violations. This simulator sweeps a reactive
policy — keep utilization near a target by adding/removing replicas with a
provisioning delay — over a sinusoidal diurnal load and reports both costs,
using the timing model's per-replica capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal daily demand in items/s.

    Attributes:
        peak_items_per_s: demand at the daily maximum.
        trough_ratio: trough demand as a fraction of the peak.
        period_hours: cycle length (24 for a day).
    """

    peak_items_per_s: float
    trough_ratio: float = 0.35
    period_hours: float = 24.0

    def __post_init__(self) -> None:
        if self.peak_items_per_s <= 0:
            raise ValueError("peak demand must be positive")
        if not 0.0 < self.trough_ratio <= 1.0:
            raise ValueError("trough_ratio must be in (0, 1]")

    def at(self, hour: float) -> float:
        """Demand at a given hour (peak at hour period/2)."""
        mid = (self.peak_items_per_s * (1 + self.trough_ratio)) / 2
        amplitude = (self.peak_items_per_s * (1 - self.trough_ratio)) / 2
        phase = 2 * math.pi * (hour / self.period_hours)
        return mid - amplitude * math.cos(phase)


@dataclass(frozen=True)
class AutoscaleStep:
    """One simulation tick."""

    hour: float
    demand_items_per_s: float
    replicas: int
    utilization: float
    sla_ok: bool


@dataclass(frozen=True)
class AutoscaleResult:
    """Outcome of one policy run."""

    steps: list[AutoscaleStep]
    replica_capacity: float

    @property
    def machine_hours(self) -> float:
        """Total replica-hours consumed."""
        if len(self.steps) < 2:
            return 0.0
        dt = self.steps[1].hour - self.steps[0].hour
        return sum(s.replicas for s in self.steps) * dt

    @property
    def violation_fraction(self) -> float:
        """Fraction of ticks where the SLA-safe utilization was exceeded."""
        return sum(not s.sla_ok for s in self.steps) / len(self.steps)

    @property
    def peak_replicas(self) -> int:
        """Largest fleet size reached."""
        return max(s.replicas for s in self.steps)


class Autoscaler:
    """Reactive target-utilization policy with provisioning lag.

    Args:
        server / config / batch_size: define per-replica capacity (items/s
            at the model's closed-loop rate).
        target_utilization: desired demand/capacity ratio.
        sla_utilization: utilization above which queueing blows the SLA.
        provision_delay_hours: lag before a scale-up decision takes effect.
        min_replicas: floor on the fleet.
    """

    def __init__(
        self,
        server: ServerSpec,
        config: ModelConfig,
        batch_size: int = 32,
        target_utilization: float = 0.6,
        sla_utilization: float = 0.85,
        provision_delay_hours: float = 0.25,
        min_replicas: int = 1,
    ) -> None:
        if not 0 < target_utilization < sla_utilization <= 1.0:
            raise ValueError("need 0 < target < sla_utilization <= 1")
        if min_replicas < 1:
            raise ValueError("min_replicas must be positive")
        latency = TimingModel(server).model_latency(config, batch_size)
        self.replica_capacity = batch_size / latency.total_seconds
        self.target_utilization = target_utilization
        self.sla_utilization = sla_utilization
        self.provision_delay_hours = provision_delay_hours
        self.min_replicas = min_replicas

    def replicas_for(self, demand: float) -> int:
        """Fleet size putting utilization at the target."""
        needed = demand / (self.replica_capacity * self.target_utilization)
        return max(self.min_replicas, math.ceil(needed))

    def run(
        self,
        load: DiurnalLoad,
        hours: float = 24.0,
        tick_hours: float = 0.1,
        healthy_fraction: Callable[[float], float] | None = None,
    ) -> AutoscaleResult:
        """Simulate the reactive policy over ``hours`` of load.

        Args:
            load: the diurnal demand curve.
            hours / tick_hours: horizon and tick.
            healthy_fraction: optional ``hour -> fraction in (0, 1]`` of
                provisioned replicas actually serving (the fault feed, e.g.
                adapted from
                :meth:`repro.serving.faults.FaultSchedule.healthy_fraction`).
                The reactive policy sees the same signal and over-provisions
                to compensate, after the provisioning delay.
        """
        if hours <= 0 or tick_hours <= 0:
            raise ValueError("hours and tick must be positive")
        steps: list[AutoscaleStep] = []
        # Pending scale-ups: (effective_hour, replica_count_target).
        pending: list[tuple[float, int]] = []
        replicas = self.replicas_for(load.at(0.0))
        t = 0.0
        while t < hours:
            demand = load.at(t)
            healthy = 1.0 if healthy_fraction is None else float(healthy_fraction(t))
            if not 0.0 < healthy <= 1.0:
                raise ValueError("healthy_fraction must return values in (0, 1]")
            desired = math.ceil(self.replicas_for(demand) / healthy)
            if desired > replicas:
                effective = t + self.provision_delay_hours
                if not pending or pending[-1][1] < desired:
                    pending.append((effective, desired))
            elif desired < replicas:
                replicas = max(desired, self.min_replicas)  # scale-down is fast
                pending = [p for p in pending if p[1] > replicas]
            while pending and pending[0][0] <= t:
                replicas = max(replicas, pending.pop(0)[1])
            serving_replicas = replicas * healthy
            utilization = demand / (serving_replicas * self.replica_capacity)
            steps.append(
                AutoscaleStep(
                    hour=t,
                    demand_items_per_s=demand,
                    replicas=replicas,
                    utilization=utilization,
                    sla_ok=utilization <= self.sla_utilization,
                )
            )
            t += tick_hours
        return AutoscaleResult(steps=steps, replica_capacity=self.replica_capacity)


def static_provisioning(
    autoscaler: Autoscaler, load: DiurnalLoad, hours: float = 24.0,
    tick_hours: float = 0.1,
) -> AutoscaleResult:
    """Baseline: provision for the peak and never scale."""
    replicas = autoscaler.replicas_for(load.peak_items_per_s)
    steps = []
    t = 0.0
    while t < hours:
        demand = load.at(t)
        utilization = demand / (replicas * autoscaler.replica_capacity)
        steps.append(
            AutoscaleStep(
                hour=t,
                demand_items_per_s=demand,
                replicas=replicas,
                utilization=utilization,
                sla_ok=utilization <= autoscaler.sla_utilization,
            )
        )
        t += tick_hours
    return AutoscaleResult(steps=steps, replica_capacity=autoscaler.replica_capacity)
