"""Query batching.

Production systems improve throughput by batching items before inference
(Section V): batching raises the compute density of FC layers (filling wide
SIMD units) at the cost of per-item queueing delay. :class:`Batcher` is a
size/timeout batcher over a query stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .loadgen import Query


@dataclass(frozen=True)
class Batch:
    """A group of queries dispatched together.

    Attributes:
        queries: the member queries.
        formed_at_s: time the batch was dispatched.
    """

    queries: tuple[Query, ...]
    formed_at_s: float

    @property
    def num_items(self) -> int:
        """Total items across member queries (the inference batch size)."""
        return sum(q.num_items for q in self.queries)

    @property
    def oldest_arrival_s(self) -> float:
        """Arrival time of the earliest member query."""
        return min(q.arrival_s for q in self.queries)


@dataclass
class Batcher:
    """Size/timeout batching policy.

    A batch is dispatched when it reaches ``max_items`` or when the oldest
    queued query has waited ``max_wait_s``.

    Attributes:
        max_items: dispatch threshold on accumulated items.
        max_wait_s: dispatch threshold on the oldest query's wait.
        max_pending_items: backpressure bound — ``offer`` refuses queries
            while ``pending_items`` is at this level, so upstream (the
            router or load source) must shed or retry instead of the
            batcher absorbing unbounded work. ``None`` (the default)
            keeps the historical unbounded behaviour. Check
            :attr:`at_capacity` before offering.
    """

    max_items: int = 32
    max_wait_s: float = 0.001
    max_pending_items: int | None = None
    _pending: list[Query] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_items < 1:
            raise ValueError("max_items must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.max_pending_items is not None and self.max_pending_items < 1:
            raise ValueError("max_pending_items must be positive")

    @property
    def pending_items(self) -> int:
        """Items currently queued."""
        return sum(q.num_items for q in self._pending)

    @property
    def at_capacity(self) -> bool:
        """True when the backpressure bound refuses further queries."""
        return (
            self.max_pending_items is not None
            and self.pending_items >= self.max_pending_items
        )

    def offer(self, query: Query) -> Batch | None:
        """Queue a query; returns a batch if the size threshold is reached.

        Raises ``ValueError`` when offered past the ``max_pending_items``
        bound — callers must consult :attr:`at_capacity` first and
        propagate the refusal upstream.
        """
        if self.at_capacity:
            raise ValueError(
                "batcher at capacity; check at_capacity before offering"
            )
        self._pending.append(query)
        if self.pending_items >= self.max_items:
            return self._dispatch(query.arrival_s)
        return None

    def poll(self, now_s: float) -> Batch | None:
        """Dispatch on timeout: returns a batch if the oldest query expired."""
        if not self._pending:
            return None
        oldest = min(q.arrival_s for q in self._pending)
        if now_s - oldest >= self.max_wait_s:
            return self._dispatch(now_s)
        return None

    def flush(self, now_s: float) -> Batch | None:
        """Dispatch whatever is queued (end of stream)."""
        if not self._pending:
            return None
        return self._dispatch(now_s)

    def _dispatch(self, now_s: float) -> Batch:
        batch = Batch(queries=tuple(self._pending), formed_at_s=now_s)
        self._pending.clear()
        return batch


def batch_stream(
    queries: list[Query], max_items: int, max_wait_s: float
) -> list[Batch]:
    """Batch an entire (time-ordered) query stream offline."""
    batcher = Batcher(max_items=max_items, max_wait_s=max_wait_s)
    batches: list[Batch] = []
    for query in sorted(queries, key=lambda q: q.arrival_s):
        timed_out = batcher.poll(query.arrival_s)
        if timed_out is not None:
            batches.append(timed_out)
        formed = batcher.offer(query)
        if formed is not None:
            batches.append(formed)
    final_time = queries[-1].arrival_s + max_wait_s if queries else 0.0
    tail = batcher.flush(final_time)
    if tail is not None:
        batches.append(tail)
    return batches
