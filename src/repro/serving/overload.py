"""Overload protection: admission control, load shedding, circuit breaking,
and SLO-aware brownout for the serving simulators.

The paper's serving story is latency-bounded throughput (Section III,
Figures 10-11): past the knee of the latency/throughput frontier, every
additional queued request is a request that will miss its SLA *and* delay
everyone behind it. The fault layer (:mod:`repro.serving.faults`) hardened
the stack against component failure; this module hardens it against
*traffic* — the flash crowds, retry storms and diurnal peaks that drive an
unprotected queue to unbounded length and p99 to infinity.

Four composable mechanisms, all declarative policies interpreted by the
simulators on their own event clocks (two runs with the same seeds are
byte-identical, and ``overload=None`` reproduces the unprotected run
record for record):

* **Admission control** (:class:`AdmissionPolicy`) — bounded queues with a
  shed policy: ``reject_newest`` (classic tail drop), ``reject_oldest``
  (LIFO-drain: shed the request that has already waited longest, since it
  is the most likely to be abandoned upstream), or ``deadline_aware``
  (drop arrivals that cannot meet their deadline given the current queue
  delay — shedding work that is already dead). Optionally a CoDel-style
  controller (:class:`CoDelController`) sheds at dequeue time whenever
  queue *sojourn* stays above a target for a full interval, which bounds
  standing-queue delay even when the queue never fills.
* **Circuit breaking** (:class:`BreakerPolicy` / :class:`CircuitBreaker`)
  — a per-replica closed → open → half-open state machine fed by
  timeout/failure events. Routing (including retries and hedges from
  :class:`~repro.serving.faults.ResiliencePolicy`) treats open breakers
  as inadmissible, so a struggling replica stops receiving traffic until
  a half-open probe proves it healthy again.
* **Brownout** (:class:`BrownoutPolicy` / :class:`BrownoutController`) —
  an SLO-aware feedback controller that, under sustained queue pressure,
  steps the service down a ladder of quality tiers (truncated sparse
  lookups or a cheaper preset, built on the same machinery as
  :class:`~repro.serving.faults.DegradationPolicy`) and steps back up on
  recovery. Each tier's recall/NDCG cost is priced by
  :func:`~repro.serving.faults.degraded_quality`, exporting the
  quality/goodput tradeoff instead of hiding it.
* **Backpressure** — bounded queues turn "absorb unbounded work" into an
  explicit queue-full signal. :class:`~repro.serving.batcher.Batcher`
  raises :class:`~repro.serving.batcher.QueueFull` past its bound,
  :class:`~repro.serving.batch_serving.BatchedServer` sheds instead of
  queueing, and the router's shed events reach the client as fail-fasts
  its retry policy can back off on.

Accounting lives in :class:`OverloadStats`; the conservation invariant
every protected run must satisfy is checked by
:func:`repro.serving.metrics.check_conservation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config.model_config import ModelConfig

__all__ = [
    "SHED_POLICIES",
    "SHED_QUEUE_FULL",
    "SHED_OLDEST",
    "SHED_DEADLINE",
    "SHED_CODEL",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "AdmissionPolicy",
    "BreakerPolicy",
    "BrownoutPolicy",
    "BrownoutTier",
    "CircuitBreaker",
    "CoDelController",
    "OverloadConfig",
    "OverloadStats",
    "default_brownout_tiers",
]

#: Admission shed policies: what a full queue does with the overflow.
SHED_POLICIES = ("reject_newest", "reject_oldest", "deadline_aware")

#: Shed reasons (stable keys in :class:`OverloadStats.shed_by_reason`).
SHED_QUEUE_FULL = "queue_full"
SHED_OLDEST = "oldest_dropped"
SHED_DEADLINE = "deadline_hopeless"
SHED_CODEL = "codel_sojourn"

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


# ------------------------------------------------------------- admission


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-queue admission control for one serving queue.

    Attributes:
        queue_capacity: maximum *waiting* requests per queue (the running
            request does not count). Arrivals beyond it are shed per
            ``shed_policy``.
        shed_policy: one of :data:`SHED_POLICIES`. ``reject_newest`` sheds
            the arrival; ``reject_oldest`` sheds the longest-waiting
            queued request and admits the arrival (fresh work is the most
            likely to still matter upstream); ``deadline_aware``
            additionally sheds any arrival whose projected completion
            (queue delay + service) already misses ``deadline_s``.
        deadline_s: latency budget used by ``deadline_aware`` shedding
            (typically the SLA deadline). Required for that policy.
        codel_target_s: target queue sojourn for the CoDel controller;
            ``None`` disables CoDel.
        codel_interval_s: CoDel evaluation interval (sojourn must exceed
            the target for this long before dropping starts; 100 ms is
            the classic default, scale it to the service time here).
    """

    queue_capacity: int = 16
    shed_policy: str = "reject_newest"
    deadline_s: float | None = None
    codel_target_s: float | None = None
    codel_interval_s: float = 0.1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"valid: {SHED_POLICIES}"
            )
        if self.shed_policy == "deadline_aware" and self.deadline_s is None:
            raise ValueError("deadline_aware shedding needs deadline_s")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.codel_target_s is not None and self.codel_target_s <= 0:
            raise ValueError("codel target must be positive")
        if self.codel_interval_s <= 0:
            raise ValueError("codel interval must be positive")

    def make_codel(self) -> "CoDelController | None":
        """A fresh CoDel controller, or ``None`` when CoDel is disabled."""
        if self.codel_target_s is None:
            return None
        return CoDelController(self.codel_target_s, self.codel_interval_s)


class CoDelController:
    """CoDel ("Controlled Delay") adapted from AQM to request queues.

    Tracks queue *sojourn time* observed at dequeue. When sojourn stays
    above ``target_s`` for a full ``interval_s``, the controller enters a
    dropping state and sheds the head-of-line request, then again after
    ``interval_s / sqrt(drop_count)`` — the classic control law whose drop
    rate accelerates until the standing queue drains. Any dequeue whose
    sojourn is back under target exits the dropping state.

    Unlike a size bound, CoDel bounds *delay*: a queue that is short but
    draining slowly (a straggling replica) still triggers it.
    """

    def __init__(self, target_s: float, interval_s: float) -> None:
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        self._first_above_s: float | None = None
        self._dropping = False
        self._drop_next_s = 0.0
        self.drop_count = 0

    def on_dequeue(self, sojourn_s: float, now_s: float) -> bool:
        """Feed one dequeue's sojourn; True means shed this request."""
        if sojourn_s < self.target_s:
            self._first_above_s = None
            self._dropping = False
            return False
        if self._dropping:
            if now_s >= self._drop_next_s:
                self.drop_count += 1
                self._drop_next_s = now_s + self.interval_s / math.sqrt(
                    self.drop_count
                )
                return True
            return False
        if self._first_above_s is None:
            self._first_above_s = now_s + self.interval_s
            return False
        if now_s >= self._first_above_s:
            self._dropping = True
            self.drop_count += 1
            self._drop_next_s = now_s + self.interval_s / math.sqrt(
                self.drop_count
            )
            return True
        return False


# --------------------------------------------------------------- breaker


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-replica circuit-breaker tuning.

    Attributes:
        failure_threshold: failures within ``window_s`` that trip the
            breaker from closed to open.
        window_s: sliding window over which failures are counted.
        open_duration_s: how long an open breaker rejects traffic before
            transitioning to half-open.
        half_open_probes: requests admitted in half-open state; one
            success closes the breaker, one failure re-opens it.
    """

    failure_threshold: int = 5
    window_s: float = 0.1
    open_duration_s: float = 0.2
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        if self.open_duration_s <= 0:
            raise ValueError("open duration must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be positive")


class CircuitBreaker:
    """Closed → open → half-open state machine on the DES clock.

    The router feeds it ``record_failure`` (timeouts, fail-fasts, crash
    kills) and ``record_success`` (completions); routing calls
    :meth:`allows` to filter candidates and :meth:`note_probe` when it
    actually sends a half-open probe. Deterministic: state depends only on
    the event sequence, never on an RNG.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BREAKER_CLOSED
        self.opens = 0
        self._failure_times_s: list[float] = []
        self._opened_at_s = 0.0
        self._probes_in_flight = 0

    def _trip(self, now_s: float) -> None:
        self.state = BREAKER_OPEN
        self.opens += 1
        self._opened_at_s = now_s
        self._failure_times_s.clear()
        self._probes_in_flight = 0

    def allows(self, now_s: float) -> bool:
        """Whether routing may target this replica at ``now_s``."""
        if self.state == BREAKER_OPEN:
            if now_s - self._opened_at_s >= self.policy.open_duration_s:
                self.state = BREAKER_HALF_OPEN
                self._probes_in_flight = 0
            else:
                return False
        if self.state == BREAKER_HALF_OPEN:
            return self._probes_in_flight < self.policy.half_open_probes
        return True

    def note_probe(self) -> None:
        """Record that a half-open probe request was actually dispatched."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight += 1

    def record_success(self, now_s: float) -> None:
        """A request on this replica completed."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self._failure_times_s.clear()
            self._probes_in_flight = 0
        elif self.state == BREAKER_CLOSED and self._failure_times_s:
            cutoff_s = now_s - self.policy.window_s
            self._failure_times_s = [
                t_s for t_s in self._failure_times_s if t_s > cutoff_s
            ]

    def record_failure(self, now_s: float) -> None:
        """A request on this replica timed out, failed fast, or was killed."""
        if self.state == BREAKER_HALF_OPEN:
            self._trip(now_s)
            return
        if self.state == BREAKER_OPEN:
            return
        cutoff_s = now_s - self.policy.window_s
        self._failure_times_s = [
            t_s for t_s in self._failure_times_s if t_s > cutoff_s
        ]
        self._failure_times_s.append(now_s)
        if len(self._failure_times_s) >= self.policy.failure_threshold:
            self._trip(now_s)


# -------------------------------------------------------------- brownout


@dataclass(frozen=True)
class BrownoutTier:
    """One rung of the brownout quality ladder.

    Exactly like :class:`~repro.serving.faults.DegradationPolicy`'s model
    transform, minus the trigger logic (the
    :class:`BrownoutController` owns when to engage): serve
    ``fallback_config`` if given, else the primary config with sparse
    lookups truncated to ``max_lookups_per_table``.
    """

    name: str
    fallback_config: ModelConfig | None = None
    max_lookups_per_table: int | None = None

    def __post_init__(self) -> None:
        if self.fallback_config is None and self.max_lookups_per_table is None:
            raise ValueError(
                "a tier needs a fallback_config or max_lookups_per_table"
            )
        if self.max_lookups_per_table is not None and self.max_lookups_per_table < 1:
            raise ValueError("max_lookups_per_table must be positive")

    def degraded_config(self, primary: ModelConfig) -> ModelConfig:
        """The model served at this tier."""
        if self.fallback_config is not None:
            return self.fallback_config
        assert self.max_lookups_per_table is not None
        # Imported here, not at module scope: faults.py consumes this
        # module's policies, so a top-level import would be circular.
        from .faults import truncate_lookups

        return truncate_lookups(primary, self.max_lookups_per_table)


def default_brownout_tiers(
    config: ModelConfig, lookup_caps: tuple[int, ...] = (8, 2)
) -> tuple[BrownoutTier, ...]:
    """A lookup-truncation ladder for ``config`` (mild → aggressive).

    Each cap must be strictly decreasing so every rung is strictly
    cheaper than the one above it.
    """
    if not lookup_caps:
        raise ValueError("need at least one lookup cap")
    if any(b >= a for a, b in zip(lookup_caps, lookup_caps[1:])):
        raise ValueError("lookup caps must be strictly decreasing")
    return tuple(
        BrownoutTier(name=f"trunc{cap}", max_lookups_per_table=cap)
        for cap in lookup_caps
    )


@dataclass(frozen=True)
class BrownoutPolicy:
    """SLO-aware brownout: step down the quality ladder under pressure.

    The pressure signal is mean queue depth across admitted replicas —
    the same signal :class:`~repro.serving.faults.DegradationPolicy`
    triggers on, but driven through a multi-tier ladder with hysteresis
    instead of a single on/off switch.

    Attributes:
        tiers: the quality ladder, mildest first. Tier 0 (implicit) is
            full quality; tier ``k`` serves ``tiers[k-1]``.
        step_up_depth: mean queue depth at or above which the controller
            degrades one tier further.
        step_down_depth: mean queue depth at or below which it recovers
            one tier. Must be below ``step_up_depth`` (hysteresis band).
        dwell_s: minimum time between tier changes, so one bursty sample
            cannot thrash the ladder.
    """

    tiers: tuple[BrownoutTier, ...]
    step_up_depth: float = 6.0
    step_down_depth: float = 1.0
    dwell_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("brownout needs at least one tier")
        if self.step_up_depth <= 0:
            raise ValueError("step_up_depth must be positive")
        if not 0.0 <= self.step_down_depth < self.step_up_depth:
            raise ValueError(
                "step_down_depth must be in [0, step_up_depth) for hysteresis"
            )
        if self.dwell_s < 0:
            raise ValueError("dwell must be non-negative")

    @property
    def num_tiers(self) -> int:
        """Ladder length including the implicit full-quality tier 0."""
        return len(self.tiers) + 1


class BrownoutController:
    """Feedback controller walking the brownout ladder on the DES clock.

    One step per :meth:`update` at most, rate-limited by ``dwell_s``:
    pressure at/above ``step_up_depth`` degrades one tier, pressure
    at/below ``step_down_depth`` recovers one. Deterministic and
    RNG-free.
    """

    def __init__(self, policy: BrownoutPolicy) -> None:
        self.policy = policy
        self.tier = 0
        self.switches = 0
        self._last_change_s = -math.inf
        #: Per-tier occupancy accounting (index 0 = full quality).
        self.time_in_tier_s = [0.0] * policy.num_tiers
        self._entered_tier_s = 0.0

    def update(self, now_s: float, pressure_depth: float) -> int:
        """Advance the controller; returns the tier for new arrivals."""
        policy = self.policy
        if now_s - self._last_change_s < policy.dwell_s:
            return self.tier
        new_tier = self.tier
        if pressure_depth >= policy.step_up_depth and self.tier < len(policy.tiers):
            new_tier = self.tier + 1
        elif pressure_depth <= policy.step_down_depth and self.tier > 0:
            new_tier = self.tier - 1
        if new_tier != self.tier:
            self.time_in_tier_s[self.tier] += now_s - self._entered_tier_s
            self._entered_tier_s = now_s
            self._last_change_s = now_s
            self.tier = new_tier
            self.switches += 1
        return self.tier

    def finish(self, horizon_s: float) -> None:
        """Close the occupancy accounting at the end of the run."""
        self.time_in_tier_s[self.tier] += max(
            0.0, horizon_s - self._entered_tier_s
        )
        self._entered_tier_s = horizon_s


# ------------------------------------------------------------- composite


@dataclass(frozen=True)
class OverloadConfig:
    """The composable overload-protection bundle a simulator accepts.

    Every mechanism defaults off; ``OverloadConfig()`` with all three
    ``None`` is equivalent to passing ``overload=None`` (the historical,
    unprotected behaviour, bit-identical).
    """

    admission: AdmissionPolicy | None = None
    breaker: BreakerPolicy | None = None
    brownout: BrownoutPolicy | None = None

    @property
    def is_noop(self) -> bool:
        """True when no mechanism is configured."""
        return (
            self.admission is None
            and self.breaker is None
            and self.brownout is None
        )


@dataclass
class OverloadStats:
    """Accounting record of one overload-protected run.

    ``shed_by_reason`` keys are the ``SHED_*`` constants; ``shed`` is
    their sum. ``time_in_tier_s[0]`` is full-quality time, so the list
    always sums to (approximately) the run duration when brownout is
    configured.
    """

    offered: int = 0
    admitted: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    breaker_rejections: int = 0
    breaker_opens: int = 0
    brownout_switches: int = 0
    max_brownout_tier: int = 0
    time_in_tier_s: list[float] = field(default_factory=list)
    completions_by_tier: list[int] = field(default_factory=list)
    max_queue_depth: int = 0

    @property
    def shed(self) -> int:
        """Total requests shed, across every reason."""
        return sum(self.shed_by_reason.values())

    def count_shed(self, reason: str) -> None:
        """Record one shed event under ``reason``."""
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    @property
    def time_degraded_s(self) -> float:
        """Total time spent below full quality (tiers >= 1)."""
        return float(sum(self.time_in_tier_s[1:]))
