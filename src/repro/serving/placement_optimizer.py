"""Fleet-wide job placement optimization (bin packing with contention).

Given a bag of inference jobs (mixed model classes) and a number of
identical machines, find the assignment maximizing aggregate closed-loop
throughput under the heterogeneous contention model of
:mod:`repro.serving.mixed_colocation`. The objective is non-linear — a
job's rate depends on its machine-mates' DRAM traffic and LLC footprints —
so we use greedy construction (place each job, largest resource demand
first, on the machine where fleet throughput grows most) followed by
pairwise-swap local search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.server import ServerSpec
from .mixed_colocation import JobSpec, machine_throughput


@dataclass(frozen=True)
class PlacementSolution:
    """One assignment of jobs to machines."""

    machines: tuple[tuple[JobSpec, ...], ...]
    total_items_per_s: float

    @property
    def num_machines(self) -> int:
        """Machine count."""
        return len(self.machines)

    def loads(self) -> list[int]:
        """Job count per machine."""
        return [len(m) for m in self.machines]


def _fleet_throughput(server: ServerSpec, machines: list[list[JobSpec]]) -> float:
    return sum(
        machine_throughput(server, jobs) for jobs in machines if jobs
    )


def greedy_placement(
    server: ServerSpec, jobs: list[JobSpec], num_machines: int
) -> PlacementSolution:
    """Greedy constructive placement, heaviest jobs first."""
    if num_machines < 1:
        raise ValueError("need at least one machine")
    if not jobs:
        raise ValueError("need at least one job")
    ordered = sorted(
        jobs,
        key=lambda j: j.config.embedding_storage_bytes()
        + j.config.mlp_storage_bytes(),
        reverse=True,
    )
    machines: list[list[JobSpec]] = [[] for _ in range(num_machines)]
    for job in ordered:
        best_machine = 0
        best_total = -1.0
        for m in range(num_machines):
            machines[m].append(job)
            total = _fleet_throughput(server, machines)
            machines[m].pop()
            if total > best_total:
                best_total = total
                best_machine = m
        machines[best_machine].append(job)
    return PlacementSolution(
        machines=tuple(tuple(m) for m in machines),
        total_items_per_s=_fleet_throughput(server, machines),
    )


def local_search(
    server: ServerSpec,
    solution: PlacementSolution,
    max_rounds: int = 3,
) -> PlacementSolution:
    """Improve a placement by pairwise job swaps until no swap helps."""
    machines = [list(m) for m in solution.machines]
    best_total = solution.total_items_per_s
    for _ in range(max_rounds):
        improved = False
        for a in range(len(machines)):
            for b in range(a + 1, len(machines)):
                for i in range(len(machines[a])):
                    for j in range(len(machines[b])):
                        if machines[a][i].config is machines[b][j].config:
                            continue  # symmetric swap, no effect
                        machines[a][i], machines[b][j] = (
                            machines[b][j],
                            machines[a][i],
                        )
                        total = _fleet_throughput(server, machines)
                        if total > best_total * (1 + 1e-9):
                            best_total = total
                            improved = True
                        else:
                            machines[a][i], machines[b][j] = (
                                machines[b][j],
                                machines[a][i],
                            )
        if not improved:
            break
    return PlacementSolution(
        machines=tuple(tuple(m) for m in machines),
        total_items_per_s=best_total,
    )


def optimize_placement(
    server: ServerSpec, jobs: list[JobSpec], num_machines: int
) -> PlacementSolution:
    """Greedy construction followed by local search."""
    return local_search(server, greedy_placement(server, jobs, num_machines))


def round_robin_placement(
    server: ServerSpec, jobs: list[JobSpec], num_machines: int
) -> PlacementSolution:
    """Contention-blind baseline: deal jobs out cyclically."""
    if num_machines < 1:
        raise ValueError("need at least one machine")
    if not jobs:
        raise ValueError("need at least one job")
    machines: list[list[JobSpec]] = [[] for _ in range(num_machines)]
    for k, job in enumerate(jobs):
        machines[k % num_machines].append(job)
    return PlacementSolution(
        machines=tuple(tuple(m) for m in machines),
        total_items_per_s=_fleet_throughput(server, machines),
    )
