"""Heterogeneous multi-model serving: residency, swaps, and a model-aware
router.

The paper's fleet (Section II, Figure 1) serves RMC1/RMC2/RMC3 side by
side on mixed server generations; Hsia et al. (arXiv:2010.05037) show the
per-model traffic mix and cross-model interference dominate at-scale
behaviour. Everything before this module simulated one model class per
run. Here a replica's DRAM is carved into *slots*, each big enough to
hold any registered model's embedding tables resident
(:class:`MultiModelPool`), and a fleet-level router
(:class:`MultiModelRouter`) dispatches a mixed arrival stream across a
heterogeneous replica pool.

Three mechanisms, all deterministic on the DES clock:

* **Residency accounting** — each replica holds
  ``dram_capacity_bytes * dram_headroom`` of usable DRAM, validated
  through :func:`~repro.serving.distributed.min_shards_for_capacity`
  (every registered model must fit a single replica un-sharded). Slots
  are uniformly sized to the largest registered model, so any model can
  load into any free slot. A model swap costs its embedding-table bytes
  at the replica's DRAM bandwidth, stretched by any active bandwidth
  fault.
* **Drain-before-swap guard** — :meth:`MultiModelPool.find_and_acquire`
  is the single atomic entry point: it either hands back a slot already
  resident with the requested model (acquired for service in the same
  call) or starts a table load into an *idle* slot. A slot that is busy
  serving another model is never reassigned; at most it is *claimed*
  (:meth:`MultiModelPool.claim_drain`), which stops new dispatches and
  swaps only after the in-flight request drains.
  :meth:`MultiModelPool.begin_service` enforces the guard: dispatching a
  model to a slot resident with a different one raises.
* **Model-aware routing with head-of-line rotation** — arrivals go to
  the least-loaded replica among those with affinity for the model
  (resident, loading, or drain-pending), falling back to the least
  loaded overall. At dispatch the per-replica queue is scanned (bounded
  window) for the first request whose model is already resident in an
  idle slot, so one cold model does not head-of-line-block warm traffic;
  a per-request skip cap bounds how often the queue head may be bypassed
  before it locks the queue and forces its swap.

Both DES engines — ``engine="reference"`` (one heap, scalar noise draws)
and ``engine="vectorized"`` (pre-sorted static streams merged against a
dynamic heap, chunked noise via
:class:`~repro.serving.des.NormalStream`) — drive the same transition
core and are bit-identical record for record, with faults, admission
control, and tracing composed (``tests/test_des_equivalence.py``).
Overload protection is admission-only here, mirroring
:class:`~repro.serving.simulator.ServingSimulator`: circuit breakers and
brownout stay router-per-model concerns
(:class:`~repro.serving.faults.ResilientRouter`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.base import OP_SLS
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from ..obs.quantiles import quantile
from ..obs.tracer import as_tracer
from .des import NormalStream, poisson_arrival_times, validate_engine
from .distributed import min_shards_for_capacity
from .overload import (
    SHED_CODEL,
    SHED_DEADLINE,
    SHED_OLDEST,
    SHED_QUEUE_FULL,
    OverloadConfig,
    OverloadStats,
)
from .router import SERVICE_NOISE_SIGMA

__all__ = [
    "SLOT_EMPTY",
    "SLOT_LOADING",
    "SLOT_RESIDENT",
    "MultiModelPool",
    "MultiModelResult",
    "MultiModelRouter",
]

#: Slot lifecycle states (``draining`` is a flag on a busy resident slot).
SLOT_EMPTY = 0
SLOT_LOADING = 1
SLOT_RESIDENT = 2

# Dynamic DES event kinds (arrivals and fault transitions are static
# streams owned by the engine loops).
_EV_COMPLETE = 0
_EV_LOAD_DONE = 1

_NO_MODEL = -1


class _Slot:
    """One residency slot on one replica (mutable DES state)."""

    __slots__ = (
        "state",
        "model",
        "busy",
        "draining",
        "pending_model",
        "loaded_at_s",
        "last_used_s",
    )

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.state = SLOT_EMPTY
        self.model = _NO_MODEL
        self.busy = False
        self.draining = False
        self.pending_model = _NO_MODEL
        self.loaded_at_s = 0.0
        self.last_used_s = 0.0


@dataclass(frozen=True)
class _LoadStart:
    """What one accepted table load looks like to the caller."""

    slot: int
    swap_base_s: float
    evicted_model: int
    thrash: bool


class MultiModelPool:
    """Slot-based residency pool over a heterogeneous replica set.

    Each replica's usable DRAM (``dram_capacity_bytes * dram_headroom``)
    is divided into uniform slots sized to the largest registered model,
    so any model can occupy any slot. The pool owns all residency state
    and its accounting: per-model slot counters, swap and thrash
    counters, and time-integrated occupancy. It never touches an RNG —
    every transition is a deterministic function of the call sequence,
    which is what makes the two router engines bit-identical.

    Args:
        replicas: one :class:`~repro.hw.server.ServerSpec` per replica
            (generations may differ — that is the point).
        models: the model classes this pool may serve. Every model must
            fit a single replica un-sharded
            (:func:`~repro.serving.distributed.min_shards_for_capacity`
            must return 1), otherwise sharded serving
            (:mod:`repro.serving.distributed`) is the right layer.
        dram_headroom: fraction of DRAM usable for embedding tables
            (validated by ``min_shards_for_capacity``).
        slots_per_replica: residency slots per replica; ``None`` derives
            the capacity bound ``budget_bytes // slot_bytes``. Explicit
            values beyond a replica's capacity raise.
        thrash_window_s: a swap evicting a model loaded into that slot
            less than this long ago counts as *thrash* (the pool is
            churning, not converging). ``None`` derives eight times the
            slowest swap.
    """

    def __init__(
        self,
        replicas: tuple[ServerSpec, ...] | list[ServerSpec],
        models: tuple[ModelConfig, ...] | list[ModelConfig],
        dram_headroom: float = 0.8,
        slots_per_replica: int | None = None,
        thrash_window_s: float | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        if not models:
            raise ValueError("need at least one model")
        names = [config.name for config in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in pool: {names}")
        self.replicas = tuple(replicas)
        self.models = tuple(models)
        self.model_names = tuple(names)
        self.dram_headroom = dram_headroom
        self.resident_bytes = tuple(
            config.embedding_storage_bytes() for config in models
        )
        for config in self.models:
            for server in set(self.replicas):
                shards = min_shards_for_capacity(config, server, dram_headroom)
                if shards != 1:
                    raise ValueError(
                        f"model {config.name!r} needs {shards} shards on "
                        f"{server.name}; a residency pool holds whole "
                        "models only (shard it via serving.distributed)"
                    )
        self.slot_bytes = max(self.resident_bytes)
        self.num_slots: tuple[int, ...] = tuple(
            self._slot_count(server, slots_per_replica)
            for server in self.replicas
        )
        # Swap cost: embedding tables stream in at DRAM bandwidth.
        self.swap_base_s = [
            [bytes_ / server.dram_bw_bytes_per_s for bytes_ in self.resident_bytes]
            for server in self.replicas
        ]
        if thrash_window_s is None:
            thrash_window_s = 8.0 * max(max(row) for row in self.swap_base_s)
        if thrash_window_s <= 0:
            raise ValueError("thrash window must be positive")
        self.thrash_window_s = thrash_window_s
        self.reset()

    def _slot_count(self, server: ServerSpec, requested: int | None) -> int:
        budget_bytes = int(server.dram_capacity_bytes * self.dram_headroom)
        capacity = budget_bytes // self.slot_bytes
        if requested is None:
            return max(1, int(capacity))
        if requested < 1:
            raise ValueError("slots_per_replica must be positive")
        if requested > capacity:
            raise ValueError(
                f"slots_per_replica={requested} exceeds {server.name}'s "
                f"capacity of {capacity} slots of {self.slot_bytes} bytes"
            )
        return requested

    # ------------------------------------------------------------- state

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def total_slots(self) -> int:
        return sum(self.num_slots)

    def reset(self) -> None:
        """Fresh run: all slots empty, counters and integrals zeroed."""
        self._slots: list[list[_Slot]] = [
            [_Slot() for _ in range(n)] for n in self.num_slots
        ]
        self.loads = 0
        self.swaps = 0
        self.thrash = 0
        self.loads_by_model = [0] * len(self.models)
        self.swaps_by_model = [0] * len(self.models)
        self._n_resident = 0
        self._n_loading = 0
        self._n_draining = 0
        self._n_busy = 0
        self._clock_s = 0.0
        self.resident_slot_s = 0.0
        self.loading_slot_s = 0.0
        self.draining_slot_s = 0.0
        self.busy_slot_s = 0.0

    def slot(self, replica: int, slot: int) -> _Slot:
        return self._slots[replica][slot]

    def _integrate(self, now_s: float) -> None:
        dt_s = now_s - self._clock_s
        if dt_s > 0.0:
            self.resident_slot_s += dt_s * self._n_resident
            self.loading_slot_s += dt_s * self._n_loading
            self.draining_slot_s += dt_s * self._n_draining
            self.busy_slot_s += dt_s * self._n_busy
            self._clock_s = now_s

    def finalize(self, end_s: float) -> None:
        """Integrate occupancy up to the end of the run."""
        self._integrate(end_s)

    # ------------------------------------------------------ introspection

    def occupancy(self, replica: int | None = None) -> tuple[int, int, int, int]:
        """``(resident, loading, draining, slots)`` — disjoint states.

        ``resident + loading + draining <= slots`` always holds (the
        remainder is empty slots); the property suite checks it after
        every chaos run.
        """
        groups = (
            self._slots if replica is None else [self._slots[replica]]
        )
        resident = loading = draining = slots = 0
        for group in groups:
            for s in group:
                slots += 1
                if s.draining:
                    draining += 1
                elif s.state == SLOT_LOADING:
                    loading += 1
                elif s.state == SLOT_RESIDENT:
                    resident += 1
        return resident, loading, draining, slots

    def verify_occupancy(self) -> None:
        """Cross-check incremental counters against a fresh slot scan."""
        resident, loading, draining, slots = self.occupancy()
        busy = sum(s.busy for group in self._slots for s in group)
        counts = (self._n_resident, self._n_loading, self._n_draining, self._n_busy)
        if counts != (resident, loading, draining, busy):
            raise AssertionError(
                f"occupancy counters {counts} diverged from slot scan "
                f"{(resident, loading, draining, busy)}"
            )
        if resident + loading + draining > slots:
            raise AssertionError("occupancy exceeds slot count")

    def resident_slots_by_model(self) -> list[int]:
        """Per-model count of slots currently resident (non-draining)."""
        counts = [0] * len(self.models)
        for group in self._slots:
            for s in group:
                if s.state == SLOT_RESIDENT and not s.draining:
                    counts[s.model] += 1
        return counts

    def has_affinity(self, replica: int, model: int) -> bool:
        """Whether ``model`` is resident, loading, or drain-pending here."""
        for s in self._slots[replica]:
            if s.draining:
                if s.pending_model == model:
                    return True
            elif s.state != SLOT_EMPTY and s.model == model:
                return True
        return False

    def has_pending_load(self, replica: int, model: int) -> bool:
        """Whether a load of ``model`` is already underway or claimed."""
        for s in self._slots[replica]:
            if s.state == SLOT_LOADING and s.model == model:
                return True
            if s.draining and s.pending_model == model:
                return True
        return False

    def idle_resident_slot(self, replica: int, model: int) -> int:
        """Lowest idle slot resident with ``model``, or -1."""
        for idx, s in enumerate(self._slots[replica]):
            if (
                s.state == SLOT_RESIDENT
                and s.model == model
                and not s.busy
                and not s.draining
            ):
                return idx
        return -1

    # -------------------------------------------------------- transitions

    def find_and_acquire(
        self, replica: int, model: int, now_s: float, allow_load: bool = True
    ):
        """Atomically find a slot for ``model`` and take it.

        Returns ``("hit", slot, 0.0)`` with the slot acquired busy for
        service, ``("load", slot, swap_base_s)`` with a table load
        started into an empty or idle-evicted slot (the caller owns the
        load-done callback via :meth:`finish_load`), or ``None`` — every
        other slot is busy, loading, or draining, and the drain guard
        refuses to touch in-flight work. With ``allow_load=False`` only
        the hit path is attempted (used while scanning a queue for warm
        work).
        """
        idx = self.idle_resident_slot(replica, model)
        if idx >= 0:
            self.begin_service(replica, idx, model, now_s)
            return ("hit", idx, 0.0)
        if not allow_load:
            return None
        start = self._acquire_for_load(replica, model, now_s)
        if start is None:
            return None
        return ("load", start.slot, start.swap_base_s)

    def acquire_for_load(self, replica: int, model: int, now_s: float):
        """Start loading ``model`` into an empty or idle slot.

        Returns a :class:`_LoadStart` (slot, base swap time, evicted
        model, thrash flag) or ``None`` when no idle slot exists — the
        drain-before-swap refusal.
        """
        return self._acquire_for_load(replica, model, now_s)

    def _acquire_for_load(self, replica: int, model: int, now_s: float):
        slots = self._slots[replica]
        target = -1
        for idx, s in enumerate(slots):
            if s.state == SLOT_EMPTY:
                target = idx
                break
        if target < 0:
            # LRU victim among idle resident slots; lowest index on ties.
            best_used_s = math.inf
            for idx, s in enumerate(slots):
                if (
                    s.state == SLOT_RESIDENT
                    and not s.busy
                    and not s.draining
                    and s.last_used_s < best_used_s
                ):
                    best_used_s = s.last_used_s
                    target = idx
        if target < 0:
            return None
        return self._start_load(replica, target, model, now_s)

    def _start_load(self, replica: int, idx: int, model: int, now_s: float):
        self._integrate(now_s)
        s = self._slots[replica][idx]
        evicted = _NO_MODEL
        thrash = False
        if s.state == SLOT_RESIDENT:
            evicted = s.model
            thrash = (now_s - s.loaded_at_s) < self.thrash_window_s
            self.swaps += 1
            if thrash:
                self.thrash += 1
            self._n_resident -= 1
        s.state = SLOT_LOADING
        s.model = model
        s.busy = False
        s.draining = False
        s.pending_model = _NO_MODEL
        self._n_loading += 1
        self.loads += 1
        self.loads_by_model[model] += 1
        if evicted != _NO_MODEL:
            self.swaps_by_model[model] += 1
        return _LoadStart(
            slot=idx,
            swap_base_s=self.swap_base_s[replica][model],
            evicted_model=evicted,
            thrash=thrash,
        )

    def claim_drain(self, replica: int, model: int, now_s: float) -> int:
        """Claim the LRU busy slot for ``model`` once its work drains.

        The slot keeps serving its in-flight request but refuses any new
        dispatch; :meth:`start_pending_load` begins the swap after the
        drain. Returns the claimed slot index, or -1 when every busy
        slot already serves ``model`` or is already claimed.
        """
        target = -1
        best_used_s = math.inf
        for idx, s in enumerate(self._slots[replica]):
            if (
                s.state == SLOT_RESIDENT
                and s.busy
                and not s.draining
                and s.model != model
                and s.last_used_s < best_used_s
            ):
                best_used_s = s.last_used_s
                target = idx
        if target < 0:
            return -1
        self._integrate(now_s)
        s = self._slots[replica][target]
        s.draining = True
        s.pending_model = model
        self._n_resident -= 1
        self._n_draining += 1
        return target

    def start_pending_load(self, replica: int, idx: int, now_s: float):
        """Begin the claimed swap on a drained slot (returns a load)."""
        s = self._slots[replica][idx]
        if not s.draining or s.busy:
            raise RuntimeError(
                f"slot {idx} on replica {replica} has no drained claim"
            )
        self._integrate(now_s)
        # Hand the slot back to the resident count so _start_load's
        # resident→loading bookkeeping applies uniformly.
        self._n_draining -= 1
        self._n_resident += 1
        pending = s.pending_model
        s.draining = False
        return self._start_load(replica, idx, pending, now_s)

    def finish_load(self, replica: int, idx: int, now_s: float) -> None:
        """A table load completed: the slot is resident and idle."""
        s = self._slots[replica][idx]
        if s.state != SLOT_LOADING:
            raise RuntimeError(f"slot {idx} on replica {replica} is not loading")
        self._integrate(now_s)
        s.state = SLOT_RESIDENT
        s.loaded_at_s = now_s
        s.last_used_s = now_s
        self._n_loading -= 1
        self._n_resident += 1

    def begin_service(
        self, replica: int, idx: int, model: int, now_s: float
    ) -> None:
        """Dispatch ``model`` onto a slot — the drain guard's hard edge.

        Raises unless the slot is idle and resident with exactly this
        model: a mismatched dispatch is the bug class the guard exists
        to make impossible.
        """
        s = self._slots[replica][idx]
        if (
            s.state != SLOT_RESIDENT
            or s.busy
            or s.draining
            or s.model != model
        ):
            raise RuntimeError(
                f"drain guard: slot {idx} on replica {replica} "
                f"(state={s.state}, model={s.model}, busy={s.busy}, "
                f"draining={s.draining}) cannot serve model {model}"
            )
        self._integrate(now_s)
        s.busy = True
        s.last_used_s = now_s
        self._n_busy += 1

    def release(self, replica: int, idx: int, now_s: float) -> None:
        """The in-flight request on ``idx`` completed."""
        s = self._slots[replica][idx]
        if not s.busy:
            raise RuntimeError(f"slot {idx} on replica {replica} is not busy")
        self._integrate(now_s)
        s.busy = False
        s.last_used_s = now_s
        self._n_busy -= 1

    def crash(self, replica: int, now_s: float) -> None:
        """Cold restart: residency is lost, every slot back to empty."""
        self._integrate(now_s)
        for s in self._slots[replica]:
            if s.draining:
                self._n_draining -= 1
            elif s.state == SLOT_LOADING:
                self._n_loading -= 1
            elif s.state == SLOT_RESIDENT:
                self._n_resident -= 1
            if s.busy:
                self._n_busy -= 1
            s.clear()

    def residency_utilization(self, duration_s: float) -> float:
        """Time-weighted fraction of slot-time holding a resident model."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self.resident_slot_s / (self.total_slots * duration_s)


# ---------------------------------------------------------------- result


@dataclass(frozen=True)
class MultiModelResult:
    """Outcome of one mixed-traffic run.

    Per-model tuples are indexed like ``model_names``. ``latencies_by_model``
    holds completion-ordered latencies (seconds) — byte-comparable across
    engines. Conservation: per model, ``offered == completed + shed +
    killed`` (every request reaches a terminal state; crashes kill both
    in-flight and queued work).
    """

    engine: str
    duration_s: float
    model_names: tuple[str, ...]
    replica_names: tuple[str, ...]
    offered_by_model: tuple[int, ...]
    completed_by_model: tuple[int, ...]
    shed_by_model: tuple[int, ...]
    killed_by_model: tuple[int, ...]
    latencies_by_model: tuple
    loads: int
    swaps: int
    thrash: int
    swaps_by_model: tuple[int, ...]
    resident_slots_by_model: tuple[int, ...]
    residency_utilization: float
    busy_utilization: float
    max_queue_depth: int
    hol_bypasses: int
    drain_claims: int
    overload: OverloadStats | None

    @property
    def offered(self) -> int:
        return sum(self.offered_by_model)

    @property
    def completed(self) -> int:
        return sum(self.completed_by_model)

    @property
    def shed(self) -> int:
        return sum(self.shed_by_model)

    @property
    def killed(self) -> int:
        return sum(self.killed_by_model)

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.duration_s

    def latencies_s(self, model: int | None = None) -> np.ndarray:
        """Latencies for one model index, or all models concatenated."""
        if model is not None:
            return np.asarray(self.latencies_by_model[model], dtype=np.float64)
        parts = [
            np.asarray(lats, dtype=np.float64)
            for lats in self.latencies_by_model
        ]
        return np.concatenate(parts) if parts else np.empty(0)

    def p99_s(self, model: int) -> float:
        """p99 latency of one model class (NaN when nothing completed)."""
        lats = self.latencies_s(model)
        if len(lats) == 0:
            return float("nan")
        return quantile(lats, 0.99)

    def summary(self) -> dict:
        """Compact jsonable digest (used by goldens and ``--json``)."""
        return {
            "engine": self.engine,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "killed": self.killed,
            "throughput_qps": self.throughput_qps,
            "loads": self.loads,
            "swaps": self.swaps,
            "thrash": self.thrash,
            "residency_utilization": self.residency_utilization,
            "max_queue_depth": self.max_queue_depth,
            "per_model": {
                name: {
                    "offered": self.offered_by_model[i],
                    "completed": self.completed_by_model[i],
                    "shed": self.shed_by_model[i],
                    "killed": self.killed_by_model[i],
                    "p99_s": self.p99_s(i),
                }
                for i, name in enumerate(self.model_names)
            },
        }


# ------------------------------------------------------- transition core


class _Core:
    """Shared DES transition logic driven by both engine loops.

    The engines differ only in how they *source* static events (one big
    heap vs pre-sorted arrays merged against a dynamic heap) and how they
    *draw* service noise (scalar lognormal vs chunked
    :class:`~repro.serving.des.NormalStream`); every state transition
    lives here, which is what makes bit-identity structural rather than
    coincidental.
    """

    def __init__(self, router, arrivals_s, model_ids, duration_s, faults, noise_factor, tracer):
        self.router = router
        self.pool = router.pool
        self.arrivals_s = arrivals_s
        self.model_ids = model_ids
        self.duration_s = duration_s
        self.faults = faults
        self.noise_factor = noise_factor
        self.tracer = tracer
        num_models = len(self.pool.models)
        num_replicas = self.pool.num_replicas
        self.up = [True] * num_replicas
        self.epoch = [0] * num_replicas
        self.queues: list[list[int]] = [[] for _ in range(num_replicas)]
        self.serving_count = [0] * num_replicas
        self.active = [[-1] * n for n in self.pool.num_slots]
        self.skips = [0] * len(arrivals_s)
        self.start_s = [0.0] * len(arrivals_s)
        self.offered_by_model = [0] * num_models
        self.completed_by_model = [0] * num_models
        self.shed_by_model = [0] * num_models
        self.killed_by_model = [0] * num_models
        self.latencies_by_model: list[list[float]] = [[] for _ in range(num_models)]
        self.max_queue_depth = 0
        self.hol_bypasses = 0
        self.drain_claims = 0
        self.end_s = 0.0
        admission = router.admission
        self.admission = admission
        self.ovl = OverloadStats() if admission is not None else None
        self.codel = [
            admission.make_codel() if admission is not None else None
            for _ in range(num_replicas)
        ]
        # The driving loop installs `push(t_s, kind, replica, slot, epoch)`.
        self.push = None

    # ------------------------------------------------------------ helpers

    def _backlog(self, replica: int) -> int:
        return len(self.queues[replica]) + self.serving_count[replica]

    def _bw_stretch(self, replica: int, now_s: float) -> float:
        """Bandwidth-fault stretch on table loads (stragglers excluded).

        ``service_multiplier`` composes straggler and bandwidth effects;
        the fully-memory-bound over compute-bound ratio isolates the
        bandwidth term, which is the one that throttles a DRAM-rate
        table load.
        """
        if self.faults is None:
            return 1.0
        full = self.faults.service_multiplier(replica, now_s, 1.0)
        none = self.faults.service_multiplier(replica, now_s, 0.0)
        return full / none

    def _shed(self, qid: int, replica: int, reason: str, now_s: float) -> None:
        model = self.model_ids[qid]
        self.shed_by_model[model] += 1
        if self.ovl is not None:
            self.ovl.count_shed(reason)
        if self.tracer.enabled:
            self.tracer.instant(
                "serving.multimodel.shed",
                now_s,
                track=replica,
                reason=reason,
                model=self.pool.model_names[model],
            )

    def _start_swap(self, replica: int, start, now_s: float) -> None:
        """Schedule the load-done event and record one swap's telemetry."""
        swap_s = start.swap_base_s * self._bw_stretch(replica, now_s)
        self.push(now_s + swap_s, _EV_LOAD_DONE, replica, start.slot, self.epoch[replica])
        if self.tracer.enabled:
            names = self.pool.model_names
            self.tracer.complete(
                "serving.multimodel.swap",
                now_s,
                now_s + swap_s,
                track=replica,
                slot=start.slot,
                model=names[self.pool.slot(replica, start.slot).model],
                evicted=(
                    names[start.evicted_model]
                    if start.evicted_model != _NO_MODEL
                    else ""
                ),
                thrash=start.thrash,
            )

    # ------------------------------------------------------------- events

    def on_arrival(self, qid: int, now_s: float) -> None:
        model = self.model_ids[qid]
        self.offered_by_model[model] += 1
        candidates = [r for r in range(self.pool.num_replicas) if self.up[r]]
        if not candidates:
            self.killed_by_model[model] += 1
            return
        affine = [r for r in candidates if self.pool.has_affinity(r, model)]
        group = affine if affine else candidates
        pick = min(group, key=lambda r: (self._backlog(r), r))
        queue = self.queues[pick]
        if self.admission is not None:
            self.ovl.offered += 1
            policy = self.admission
            if policy.shed_policy == "deadline_aware":
                expected_s = self.router.service_s[pick][model]
                waiting = len(queue) + self.serving_count[pick]
                projected_s = (
                    waiting * expected_s / self.pool.num_slots[pick]
                    + expected_s
                )
                if projected_s > policy.deadline_s:
                    self._shed(qid, pick, SHED_DEADLINE, now_s)
                    return
            if len(queue) >= policy.queue_capacity:
                if policy.shed_policy == "reject_oldest":
                    oldest = queue.pop(0)
                    self._shed(oldest, pick, SHED_OLDEST, now_s)
                else:
                    self._shed(qid, pick, SHED_QUEUE_FULL, now_s)
                    return
            self.ovl.admitted += 1
        queue.append(qid)
        depth = len(queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self.ovl is not None and depth > self.ovl.max_queue_depth:
            self.ovl.max_queue_depth = depth
        self.try_dispatch(pick, now_s)

    def on_complete(self, replica: int, slot: int, epoch: int, now_s: float) -> None:
        if epoch != self.epoch[replica] or not self.up[replica]:
            return
        qid = self.active[replica][slot]
        self.active[replica][slot] = -1
        model = self.model_ids[qid]
        latency_s = now_s - self.arrivals_s[qid]
        self.latencies_by_model[model].append(latency_s)
        self.completed_by_model[model] += 1
        self.serving_count[replica] -= 1
        self.end_s = now_s
        if self.tracer.enabled:
            self.tracer.complete(
                "serving.multimodel.request",
                self.arrivals_s[qid],
                now_s,
                track=replica,
                model=self.pool.model_names[model],
                slot=slot,
                queue_s=self.start_s[qid] - self.arrivals_s[qid],
                service_s=now_s - self.start_s[qid],
            )
        self.pool.release(replica, slot, now_s)
        state = self.pool.slot(replica, slot)
        if state.draining:
            start = self.pool.start_pending_load(replica, slot, now_s)
            self._start_swap(replica, start, now_s)
            return
        self.try_dispatch(replica, now_s)

    def on_load_done(self, replica: int, slot: int, epoch: int, now_s: float) -> None:
        if epoch != self.epoch[replica] or not self.up[replica]:
            return
        self.pool.finish_load(replica, slot, now_s)
        self.end_s = now_s
        self.try_dispatch(replica, now_s)

    def on_fault(self, replica: int, goes_down: bool, now_s: float) -> None:
        if goes_down:
            if not self.up[replica]:
                return
            self.up[replica] = False
            self.epoch[replica] += 1
            self.end_s = now_s
            for slot, qid in enumerate(self.active[replica]):
                if qid >= 0:
                    self.killed_by_model[self.model_ids[qid]] += 1
                    self.active[replica][slot] = -1
            for qid in self.queues[replica]:
                self.killed_by_model[self.model_ids[qid]] += 1
            self.queues[replica].clear()
            self.serving_count[replica] = 0
            self.pool.crash(replica, now_s)
            if self.tracer.enabled:
                self.tracer.instant(
                    "serving.multimodel.crash", now_s, track=replica
                )
        else:
            if self.up[replica]:
                return
            self.up[replica] = True
            if self.tracer.enabled:
                self.tracer.instant(
                    "serving.multimodel.restart", now_s, track=replica
                )

    # ----------------------------------------------------------- dispatch

    def try_dispatch(self, replica: int, now_s: float) -> None:
        """Serve, load, or claim — the head-of-line rotation loop."""
        if not self.up[replica]:
            return
        pool = self.pool
        model_ids = self.model_ids
        router = self.router
        queue = self.queues[replica]
        while queue:
            head = queue[0]
            # Rotation window: a head that exhausted its skip budget locks
            # the queue (starvation guard) — only it may dispatch or swap.
            if self.skips[head] < router.hol_skip_cap:
                window = min(len(queue), router.hol_scan_window)
            else:
                window = 1
            served = False
            for pos in range(window):
                qid = queue[pos]
                slot = pool.idle_resident_slot(replica, model_ids[qid])
                if slot < 0:
                    continue
                del queue[pos]
                if pos > 0:
                    self.skips[head] += 1
                    self.hol_bypasses += 1
                codel = self.codel[replica]
                if codel is not None and codel.on_dequeue(
                    now_s - self.arrivals_s[qid], now_s
                ):
                    self._shed(qid, replica, SHED_CODEL, now_s)
                else:
                    self._dispatch(replica, slot, qid, now_s)
                served = True
                break
            if served:
                continue
            # Nothing in the window is warm: start table loads, head first.
            loads_started = False
            seen = set()
            for pos in range(window):
                model = model_ids[queue[pos]]
                if model in seen:
                    continue
                seen.add(model)
                if pool.has_pending_load(replica, model):
                    continue
                start = pool.acquire_for_load(replica, model, now_s)
                if start is None:
                    break
                self._start_swap(replica, start, now_s)
                loads_started = True
            if loads_started:
                return
            # Every slot is busy/loading/draining: claim a drain for the
            # head's model so the swap begins the moment work drains.
            head_model = model_ids[queue[0]]
            if not pool.has_affinity(replica, head_model):
                claimed = pool.claim_drain(replica, head_model, now_s)
                if claimed >= 0:
                    self.drain_claims += 1
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "serving.multimodel.drain",
                            now_s,
                            track=replica,
                            slot=claimed,
                            model=pool.model_names[head_model],
                        )
            return

    def _dispatch(self, replica: int, slot: int, qid: int, now_s: float) -> None:
        model = self.model_ids[qid]
        self.pool.begin_service(replica, slot, model, now_s)
        self.active[replica][slot] = qid
        self.serving_count[replica] += 1
        self.start_s[qid] = now_s
        base_s = self.router.service_s[replica][model]
        if self.faults is not None:
            base_s *= self.faults.service_multiplier(
                replica, now_s, self.router.memory_fraction[replica][model]
            )
        service_s = base_s * self.noise_factor()
        self.push(
            now_s + service_s, _EV_COMPLETE, replica, slot, self.epoch[replica]
        )


# ---------------------------------------------------------------- router


def _resolve_pool(
    pool,
    replicas,
    models,
    *,
    dram_headroom,
    slots_per_replica,
    thrash_window_s,
) -> MultiModelPool:
    """Normalize the router's pool-or-specs constructor contract."""
    if pool is not None:
        if replicas is not None or models is not None:
            raise ValueError("pass a pool or replicas+models, not both")
        return pool
    if replicas is None or models is None:
        raise ValueError("need a pool, or replicas and models")
    return MultiModelPool(
        replicas,
        models,
        dram_headroom=dram_headroom,
        slots_per_replica=slots_per_replica,
        thrash_window_s=thrash_window_s,
    )


class MultiModelRouter:
    """Least-loaded, model-aware router over a :class:`MultiModelPool`.

    Args:
        pool: an existing pool to route over, or ``None`` to build one
            from ``replicas``/``models``.
        replicas: replica specs (exclusive with ``pool``).
        models: model classes (exclusive with ``pool``).
        batch_size: inference batch per request (prices service times).
        dram_headroom: forwarded to the pool when one is built here.
        slots_per_replica: forwarded to the pool when one is built here.
        thrash_window_s: forwarded to the pool when one is built here.
        hol_skip_cap: how many times the queue head may be bypassed by
            warm-resident work before it locks the queue.
        hol_scan_window: how deep the rotation scans the queue.
        overload: optional :class:`~repro.serving.overload.OverloadConfig`.
            Admission control only — circuit breakers and brownout are
            per-model router concerns
            (:class:`~repro.serving.faults.ResilientRouter`); passing
            them raises, mirroring ``ServingSimulator``.
        seed: RNG seed (arrival synthesis and service noise).
        engine: ``"reference"`` or ``"vectorized"`` — bit-identical.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; spans/instants
            under ``serving.multimodel.*``. Purely observational.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            swap/thrash counters and slot-occupancy gauges recorded at
            the end of each run. Purely observational.
    """

    def __init__(
        self,
        pool: MultiModelPool | None = None,
        *,
        replicas=None,
        models=None,
        batch_size: int = 8,
        dram_headroom: float = 0.8,
        slots_per_replica: int | None = None,
        thrash_window_s: float | None = None,
        hol_skip_cap: int = 4,
        hol_scan_window: int = 16,
        overload: OverloadConfig | None = None,
        seed: int = 0,
        engine: str = "reference",
        tracer=None,
        metrics=None,
    ) -> None:
        resolved = _resolve_pool(
            pool,
            replicas,
            models,
            dram_headroom=dram_headroom,
            slots_per_replica=slots_per_replica,
            thrash_window_s=thrash_window_s,
        )
        validate_engine(engine)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if hol_skip_cap < 0:
            raise ValueError("hol_skip_cap must be non-negative")
        if hol_scan_window < 1:
            raise ValueError("hol_scan_window must be positive")
        self.admission = None
        if overload is not None:
            if overload.breaker is not None or overload.brownout is not None:
                raise ValueError(
                    "MultiModelRouter supports only admission control; "
                    "circuit breakers and brownout live in ResilientRouter"
                )
            self.admission = overload.admission
        self.pool = resolved
        self.batch_size = batch_size
        self.hol_skip_cap = hol_skip_cap
        self.hol_scan_window = hol_scan_window
        self.seed = seed
        self.engine = engine
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        timings: dict[str, TimingModel] = {}
        for spec in resolved.replicas:
            if spec.name not in timings:
                timings[spec.name] = TimingModel(spec)
        self.service_s: list[list[float]] = []
        self.memory_fraction: list[list[float]] = []
        for spec in resolved.replicas:
            row_s = []
            row_frac = []
            for config in resolved.models:
                latency = timings[spec.name].model_latency(config, batch_size)
                row_s.append(latency.total_seconds)
                row_frac.append(
                    latency.fraction_by_op_type().get(OP_SLS, 0.0)
                )
            self.service_s.append(row_s)
            self.memory_fraction.append(row_frac)

    # ------------------------------------------------------------ arrivals

    def _synthesize_arrivals(
        self, rng, duration_s: float, offered_qps: float, mix
    ):
        """Seeded mixed Poisson arrivals (shared by both engines)."""
        if offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        num_models = len(self.pool.models)
        if mix is None:
            weights = np.full(num_models, 1.0 / num_models)
        else:
            weights = np.asarray(mix, dtype=np.float64)
            if len(weights) != num_models or np.any(weights < 0):
                raise ValueError(
                    f"mix needs {num_models} non-negative weights"
                )
            total = weights.sum()
            if total <= 0:
                raise ValueError("mix weights must sum to a positive value")
            weights = weights / total
        times = poisson_arrival_times(rng, offered_qps, duration_s)
        draws = rng.random(len(times))
        model_ids = np.searchsorted(np.cumsum(weights), draws, side="right")
        model_ids = np.minimum(model_ids, num_models - 1)
        return [float(t) for t in times], [int(m) for m in model_ids]

    def _queries_to_arrays(self, queries, duration_s: float):
        index = {name: i for i, name in enumerate(self.pool.model_names)}
        arrivals_s: list[float] = []
        model_ids: list[int] = []
        last_s = 0.0
        for query in queries:
            model = getattr(query, "model", None)
            if model is None and len(index) == 1:
                model = self.pool.model_names[0]
            if model not in index:
                raise ValueError(f"query model {model!r} not in pool")
            if query.arrival_s < last_s:
                raise ValueError("queries must be sorted by arrival time")
            if query.arrival_s >= duration_s:
                break
            last_s = query.arrival_s
            arrivals_s.append(float(query.arrival_s))
            model_ids.append(index[model])
        return arrivals_s, model_ids

    # ----------------------------------------------------------------- run

    def run(
        self,
        duration_s: float,
        *,
        offered_qps: float | None = None,
        mix=None,
        queries=None,
        load=None,
        faults=None,
    ) -> MultiModelResult:
        """Simulate mixed traffic for ``duration_s`` seconds.

        Exactly one arrival source: ``offered_qps`` (+ optional ``mix``
        weights) for seeded Poisson synthesis, ``queries`` for an
        explicit trace of
        :class:`~repro.serving.loadgen.MixedQuery`, or ``load`` for any
        generator with a ``generate(duration_s)`` method (e.g.
        :class:`~repro.serving.loadgen.MixedModelLoadGenerator`).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        sources = sum(
            x is not None for x in (offered_qps, queries, load)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of offered_qps, queries, or load"
            )
        rng = np.random.default_rng(self.seed)
        if load is not None:
            queries = load.generate(duration_s)
        if queries is not None:
            arrivals_s, model_ids = self._queries_to_arrays(
                queries, duration_s
            )
        else:
            arrivals_s, model_ids = self._synthesize_arrivals(
                rng, duration_s, offered_qps, mix
            )
        self.pool.reset()
        fault_events = (
            faults.transition_events(self.pool.num_replicas)
            if faults is not None
            else []
        )
        tracer = self.tracer
        if tracer.enabled:
            for r, spec in enumerate(self.pool.replicas):
                tracer.set_track_name(r, f"replica {r} ({spec.name})")
        log_mean = -0.5 * SERVICE_NOISE_SIGMA**2
        if self.engine == "vectorized":
            normals = NormalStream(rng)
            core = _Core(
                self,
                arrivals_s,
                model_ids,
                duration_s,
                faults,
                lambda: math.exp(
                    log_mean + SERVICE_NOISE_SIGMA * normals.next()
                ),
                tracer,
            )
            self._drive_vectorized(core, fault_events)
            normals.close()
        else:
            core = _Core(
                self,
                arrivals_s,
                model_ids,
                duration_s,
                faults,
                lambda: float(
                    rng.lognormal(mean=log_mean, sigma=SERVICE_NOISE_SIGMA)
                ),
                tracer,
            )
            self._drive_reference(core, fault_events)
        end_s = max(duration_s, core.end_s)
        self.pool.finalize(end_s)
        result = MultiModelResult(
            engine=self.engine,
            duration_s=duration_s,
            model_names=self.pool.model_names,
            replica_names=tuple(spec.name for spec in self.pool.replicas),
            offered_by_model=tuple(core.offered_by_model),
            completed_by_model=tuple(core.completed_by_model),
            shed_by_model=tuple(core.shed_by_model),
            killed_by_model=tuple(core.killed_by_model),
            latencies_by_model=tuple(
                tuple(lats) for lats in core.latencies_by_model
            ),
            loads=self.pool.loads,
            swaps=self.pool.swaps,
            thrash=self.pool.thrash,
            swaps_by_model=tuple(self.pool.swaps_by_model),
            resident_slots_by_model=tuple(
                self.pool.resident_slots_by_model()
            ),
            residency_utilization=self.pool.residency_utilization(end_s),
            busy_utilization=self.pool.busy_slot_s
            / (self.pool.total_slots * end_s),
            max_queue_depth=core.max_queue_depth,
            hol_bypasses=core.hol_bypasses,
            drain_claims=core.drain_claims,
            overload=core.ovl,
        )
        if self.metrics is not None:
            self._record_metrics(result)
        return result

    # ---------------------------------------------------------- engines

    def _drive_reference(self, core: _Core, fault_events) -> None:
        """One heap, every event — the executable specification."""
        heap = []
        seq = 0
        for qid, t_s in enumerate(core.arrivals_s):
            heap.append((t_s, seq, -1, qid, 0, 0))
            seq += 1
        for t_s, replica, goes_down in fault_events:
            heap.append((t_s, seq, -2, replica, int(goes_down), 0))
            seq += 1
        heapq.heapify(heap)
        counter = [seq]

        def push(t_s, kind, replica, slot, epoch):
            counter[0] += 1
            heapq.heappush(heap, (t_s, counter[0], kind, replica, slot, epoch))

        core.push = push
        while heap:
            t_s, _, kind, a, b, epoch = heapq.heappop(heap)
            if kind == -1:
                core.on_arrival(a, t_s)
            elif kind == -2:
                core.on_fault(a, bool(b), t_s)
            elif kind == _EV_COMPLETE:
                core.on_complete(a, b, epoch, t_s)
            else:
                core.on_load_done(a, b, epoch, t_s)

    def _drive_vectorized(self, core: _Core, fault_events) -> None:
        """Pre-sorted static streams merged against a dynamic heap.

        Arrivals and fault transitions are already time-sorted, so the
        loop replaces their O(log n) heap traffic with two array
        cursors; only completions and load-dones go through a (small)
        heap. ``<=`` comparisons reproduce the reference heap's tie
        order: arrivals, then faults, then dynamics.
        """
        arrivals_s = core.arrivals_s
        num_arrivals = len(arrivals_s)
        num_faults = len(fault_events)
        ai = 0
        fi = 0
        dyn: list = []
        counter = [0]

        def push(t_s, kind, replica, slot, epoch):
            counter[0] += 1
            heapq.heappush(dyn, (t_s, counter[0], kind, replica, slot, epoch))

        core.push = push
        inf = math.inf
        while ai < num_arrivals or fi < num_faults or dyn:
            ta_s = arrivals_s[ai] if ai < num_arrivals else inf
            tf_s = fault_events[fi][0] if fi < num_faults else inf
            td_s = dyn[0][0] if dyn else inf
            if ta_s <= tf_s and ta_s <= td_s:
                ai += 1
                core.on_arrival(ai - 1, ta_s)
            elif tf_s <= td_s:
                _, replica, goes_down = fault_events[fi]
                fi += 1
                core.on_fault(replica, bool(goes_down), tf_s)
            else:
                t_s, _, kind, a, b, epoch = heapq.heappop(dyn)
                if kind == _EV_COMPLETE:
                    core.on_complete(a, b, epoch, t_s)
                else:
                    core.on_load_done(a, b, epoch, t_s)

    # ----------------------------------------------------------- metrics

    def _record_metrics(self, result: MultiModelResult) -> None:
        registry = self.metrics
        registry.counter("serving.multimodel.loads").inc(result.loads)
        registry.counter("serving.multimodel.swaps").inc(result.swaps)
        registry.counter("serving.multimodel.thrash").inc(result.thrash)
        registry.gauge("serving.multimodel.residency").set(
            result.residency_utilization
        )
        registry.gauge("serving.multimodel.max_queue_depth").set(
            result.max_queue_depth
        )
        for i, name in enumerate(result.model_names):
            registry.counter(
                "serving.multimodel.completed", model=name
            ).inc(result.completed_by_model[i])
            registry.gauge(
                "serving.multimodel.slot_occupancy", model=name
            ).set(result.resident_slots_by_model[i])
        if result.overload is not None:
            registry.counter("serving.overload.shed").inc(
                result.overload.shed
            )
