"""Fleet-level cycle accounting (Figures 1 and 4).

Figure 1 reports how AI inference cycles split across model classes in the
production fleet: RMC1+RMC2+RMC3 consume ~65%, other recommendation models
bring the recommendation total to ~79%, and the remainder runs CNNs/RNNs.
Figure 4 splits the same cycles by *operator* (FC, SLS, Concat, ...), with
SLS alone near 15% of all AI inference cycles — 4x the Conv share and 20x
the Recurrent share.

:class:`Fleet` combines a service mix (shares of total inference cycles)
with per-service operator breakdowns — derived from the timing model for
recommendation services and from per-layer cost models for the CNN/RNN
services — to regenerate both figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..config.presets import RMC1_LARGE, RMC1_SMALL, RMC2_LARGE, RMC2_SMALL, RMC3_SMALL
from ..core.operators.base import OP_ACTIVATION, OP_CONV, OP_FC, OP_OTHER, OP_RECURRENT
from ..hw.server import BROADWELL, ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class FleetService:
    """One service in the data-center mix.

    Attributes:
        name: service label.
        model_class: "RMC1"/"RMC2"/"RMC3"/"OtherRM"/"CNN"/"RNN".
        cycles_share: fraction of fleet AI-inference cycles.
        operator_fractions: share of this service's cycles per operator.
    """

    name: str
    model_class: str
    cycles_share: float
    operator_fractions: dict[str, float]

    @property
    def is_recommendation(self) -> bool:
        """True for recommendation services (RMC* and other RMs)."""
        return self.model_class not in ("CNN", "RNN", "MLP")


class Fleet:
    """A weighted collection of services (the data-center AI mix)."""

    def __init__(self, services: list[FleetService]) -> None:
        if not services:
            raise ValueError("fleet needs at least one service")
        total = sum(s.cycles_share for s in services)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"cycle shares must sum to 1, got {total}")
        self.services = list(services)

    # -------------------------------------------------------------- figure 1

    def cycles_by_model_class(self) -> dict[str, float]:
        """Fraction of AI cycles per model class (Figure 1)."""
        out: dict[str, float] = {}
        for service in self.services:
            out[service.model_class] = (
                out.get(service.model_class, 0.0) + service.cycles_share
            )
        return out

    def recommendation_share(self) -> float:
        """Total share of cycles spent on recommendation models."""
        return sum(s.cycles_share for s in self.services if s.is_recommendation)

    def rmc_core_share(self) -> float:
        """Share consumed by the three studied classes (RMC1+RMC2+RMC3)."""
        return sum(
            s.cycles_share
            for s in self.services
            if s.model_class in ("RMC1", "RMC2", "RMC3")
        )

    # -------------------------------------------------------------- figure 4

    def cycles_by_operator(self, recommendation_only: bool | None = None) -> dict[str, float]:
        """Fleet-wide cycle share per operator category (Figure 4).

        Args:
            recommendation_only: True → only recommendation services,
                False → only non-recommendation, None → everything.
        """
        out: dict[str, float] = {}
        for service in self.services:
            if recommendation_only is True and not service.is_recommendation:
                continue
            if recommendation_only is False and service.is_recommendation:
                continue
            for op_type, fraction in service.operator_fractions.items():
                out[op_type] = out.get(op_type, 0.0) + service.cycles_share * fraction
        return out


def fleet_availability(fleet: Fleet, class_availability: dict[str, float]) -> float:
    """Cycle-weighted availability of the AI fleet.

    Given per-model-class availability (from
    :class:`repro.serving.metrics.ResilienceStats` of each service's
    serving run), returns the fraction of demanded AI-inference cycles
    actually served. Classes missing from the map are assumed fully
    available.
    """
    served = 0.0
    for service in fleet.services:
        avail = class_availability.get(service.model_class, 1.0)
        if not 0.0 <= avail <= 1.0:
            raise ValueError(
                f"availability for {service.model_class!r} must be in [0, 1]"
            )
        served += service.cycles_share * avail
    return served


#: Fraction of a production recommendation service's cycles spent outside
#: model operators (feature transforms, embedding-ID preprocessing, memory
#: copies, RPC (de)serialization) — the "Other" bar of Figure 4.
PRODUCTION_OTHER_FRACTION = 0.35


def _model_operator_fractions(
    server: ServerSpec, config: ModelConfig, batch_size: int
) -> dict[str, float]:
    """Operator mix of a production service built on ``config``.

    The timing model gives the in-model split; production services wrap it
    with framework work accounted as ``Other``.
    """
    model = TimingModel(server).model_latency(config, batch_size).fraction_by_op_type()
    scaled = {k: v * (1.0 - PRODUCTION_OTHER_FRACTION) for k, v in model.items()}
    scaled[OP_OTHER] = scaled.get(OP_OTHER, 0.0) + PRODUCTION_OTHER_FRACTION
    return scaled


#: Operator mix of CNN services, from ResNet50-style layer cost accounting:
#: convolutions dominate, with a classifier FC and element-wise layers.
CNN_OPERATOR_FRACTIONS = {OP_CONV: 0.82, OP_FC: 0.06, OP_ACTIVATION: 0.07, OP_OTHER: 0.05}

#: Operator mix of RNN services (GNMT/speech): recurrent cells dominate,
#: with embedding/projection FC layers.
RNN_OPERATOR_FRACTIONS = {
    OP_RECURRENT: 0.72,
    OP_FC: 0.18,
    OP_ACTIVATION: 0.06,
    OP_OTHER: 0.04,
}


def production_fleet(
    server: ServerSpec = BROADWELL, batch_size: int = 16
) -> Fleet:
    """The paper's production mix with derived operator breakdowns.

    Cycle shares follow Figure 1: the three studied classes consume 65% of
    AI inference cycles (split across small/large variants), other
    recommendation models 14% (bringing recommendation to 79%), and
    non-recommendation services the remaining 21% — mostly FC-heavy MLP
    services plus smaller CNN and RNN deployments, sized so that Figure 4's
    contrast holds (SLS ~15% of all AI cycles, about 4x the Conv share and
    20x the Recurrent share).
    """
    def rec(name: str, cls: str, share: float, config: ModelConfig) -> FleetService:
        return FleetService(
            name=name,
            model_class=cls,
            cycles_share=share,
            operator_fractions=_model_operator_fractions(server, config, batch_size),
        )

    other_rm_fractions = _model_operator_fractions(server, RMC1_SMALL, batch_size)
    services = [
        rec("rmc1-small", "RMC1", 0.22, RMC1_SMALL),
        rec("rmc1-large", "RMC1", 0.13, RMC1_LARGE),
        rec("rmc2-small", "RMC2", 0.12, RMC2_SMALL),
        rec("rmc2-large", "RMC2", 0.08, RMC2_LARGE),
        rec("rmc3", "RMC3", 0.10, RMC3_SMALL),
        FleetService("other-rm", "OtherRM", 0.14, other_rm_fractions),
        FleetService(
            "mlp-services",
            "MLP",
            0.15,
            {OP_FC: 0.80, OP_ACTIVATION: 0.08, OP_OTHER: 0.12},
        ),
        FleetService("vision", "CNN", 0.045, dict(CNN_OPERATOR_FRACTIONS)),
        FleetService("language", "RNN", 0.015, dict(RNN_OPERATOR_FRACTIONS)),
    ]
    return Fleet(services)
