"""Data-center scheduling: co-location sweeps and heterogeneous routing.

The paper's closing argument: micro-architectural diversity (frequency,
SIMD width, cache hierarchy, DRAM generation) "exposes scheduling
optimization opportunities" — pick the co-location degree per machine to
maximize latency-bounded throughput, and route each model class to the
server generation that suits it (Broadwell for latency-critical low-batch
work, Skylake for batched/high-co-location throughput).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from .metrics import SLA, ThroughputPoint, latency_bounded_throughput


def colocation_sweep(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    sla: SLA,
    max_jobs: int | None = None,
) -> list[ThroughputPoint]:
    """Latency/throughput frontier as co-location increases (Figure 10).

    Each point places ``n`` instances on one socket (closed loop, one per
    physical core) and reports per-inference latency and aggregate items/s.
    """
    timing = TimingModel(server)
    if max_jobs is None:
        max_jobs = server.cores_per_socket + server.cores_per_socket // 2
    points = []
    for n in range(1, max_jobs + 1):
        state = timing.colocation_state(config, batch_size, n)
        latency_s = timing.model_latency(config, batch_size, state).total_seconds
        points.append(
            ThroughputPoint(
                num_jobs=n,
                latency_s=latency_s,
                items_per_s=n * batch_size / latency_s,
                meets_sla=latency_s <= sla.deadline_s,
            )
        )
    return points


@dataclass(frozen=True)
class PlacementDecision:
    """The scheduler's choice for one (model, server) pair."""

    server_name: str
    model_name: str
    batch_size: int
    num_jobs: int
    latency_s: float
    items_per_s: float


def best_placement(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    sla: SLA,
    max_jobs: int | None = None,
) -> PlacementDecision | None:
    """Highest-throughput SLA-feasible co-location degree on one server."""
    points = colocation_sweep(server, config, batch_size, sla, max_jobs)
    best = latency_bounded_throughput(points)
    if best is None:
        return None
    return PlacementDecision(
        server_name=server.name,
        model_name=config.name,
        batch_size=batch_size,
        num_jobs=best.num_jobs,
        latency_s=best.latency_s,
        items_per_s=best.items_per_s,
    )


def route_to_best_server(
    servers: list[ServerSpec],
    config: ModelConfig,
    batch_size: int,
    sla: SLA,
) -> PlacementDecision | None:
    """Pick the server generation maximizing latency-bounded throughput.

    This is the heterogeneity-aware scheduling the paper motivates: the
    answer differs by model class, batch size and SLA strictness.
    """
    decisions = []
    for server in servers:
        decision = best_placement(server, config, batch_size, sla)
        if decision is not None:
            decisions.append(decision)
    if not decisions:
        return None
    return max(decisions, key=lambda d: d.items_per_s)
