"""Mixed-model co-location: which models should share a machine?

The paper's co-location study (Section VI) uses homogeneous jobs, but its
mechanism — contention scales with the co-runners' DRAM traffic and
resident working sets — immediately implies a placement rule: avoid packing
memory-intensive models together. This module evaluates heterogeneous
placements: each job's contention state is built from the *other* jobs'
actual traffic and footprints, so a machine mixing RMC2 (DRAM-hungry) with
RMC3 (compute-hungry) behaves differently from one running eight RMC2s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..hw.colocation import ColocationState
from ..hw.server import ServerSpec
from ..hw.timing import ModelLatency, TimingModel


@dataclass(frozen=True)
class JobSpec:
    """One inference job to place."""

    config: ModelConfig
    batch_size: int

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


@dataclass(frozen=True)
class PlacedJob:
    """One job's predicted behaviour within a machine's mix."""

    job: JobSpec
    latency: ModelLatency

    @property
    def items_per_s(self) -> float:
        """Closed-loop serving rate of this job."""
        return self.job.batch_size / self.latency.total_seconds


def machine_latencies(server: ServerSpec, jobs: list[JobSpec]) -> list[PlacedJob]:
    """Predict each job's latency when all ``jobs`` share one socket.

    Each job sees a contention state whose co-runner traffic and resident
    footprint are the averages of the *other* jobs on the machine.
    """
    if not jobs:
        raise ValueError("need at least one job")
    timing = TimingModel(server)
    traffic = [
        timing.estimate_random_traffic_gbps(j.config, j.batch_size) for j in jobs
    ]
    resident = [timing.resident_bytes(j.config) for j in jobs]
    n = len(jobs)
    placed = []
    for i, job in enumerate(jobs):
        if n == 1:
            state = ColocationState(num_jobs=1)
        else:
            others_traffic = (sum(traffic) - traffic[i]) / (n - 1)
            others_resident = (sum(resident) - resident[i]) // (n - 1)
            state = ColocationState(
                num_jobs=n,
                corunner_random_gbps=others_traffic,
                resident_bytes_per_job=int(others_resident),
            )
        placed.append(
            PlacedJob(
                job=job,
                latency=timing.model_latency(job.config, job.batch_size, state),
            )
        )
    return placed


def machine_throughput(server: ServerSpec, jobs: list[JobSpec]) -> float:
    """Aggregate closed-loop items/s of one machine's job mix."""
    return sum(p.items_per_s for p in machine_latencies(server, jobs))


@dataclass(frozen=True)
class GroupingComparison:
    """Segregated vs interleaved placement of two job groups on two machines."""

    segregated_items_per_s: float
    interleaved_items_per_s: float

    @property
    def interleaving_gain(self) -> float:
        """Throughput multiplier of interleaving over segregation."""
        return self.interleaved_items_per_s / self.segregated_items_per_s


def compare_groupings(
    server: ServerSpec, group_a: list[JobSpec], group_b: list[JobSpec]
) -> GroupingComparison:
    """Two machines, two job groups: keep groups apart, or interleave?

    Segregated: machine 1 runs all of ``group_a``, machine 2 all of
    ``group_b``. Interleaved: each machine runs half of each group
    (groups must have even size).
    """
    if len(group_a) % 2 or len(group_b) % 2:
        raise ValueError("groups must have even size to interleave")
    segregated = machine_throughput(server, group_a) + machine_throughput(
        server, group_b
    )
    half_a, half_b = len(group_a) // 2, len(group_b) // 2
    mixed_one = group_a[:half_a] + group_b[:half_b]
    mixed_two = group_a[half_a:] + group_b[half_b:]
    interleaved = machine_throughput(server, mixed_one) + machine_throughput(
        server, mixed_two
    )
    return GroupingComparison(
        segregated_items_per_s=segregated,
        interleaved_items_per_s=interleaved,
    )
