"""Failure-domain topology and correlated fault storms.

Real fleet failures are *correlated*: a rack power event or a top-of-rack
switch partition takes out every replica in that domain at once, which is
exactly the regime where per-replica retry and hedge policies are weakest
(Hsia et al., arXiv:2010.05037 — at-scale effects are dominated by
cross-machine structure). This module adds the missing structure:

* :class:`FleetTopology` — a deterministic replica → host → rack → zone
  assignment derived purely from the fleet size and per-level widths, so
  the same fleet always maps to the same domains.
* **Domain fault events** — :class:`DomainCrash` (power loss: every
  replica in the domain dies and its in-memory state is destroyed),
  :class:`DomainPartition` (network isolation: replicas are unreachable
  but their state survives) and :class:`DomainSlowdown` (shared-resource
  degradation across the domain), composed in a declarative
  :class:`DomainSchedule`.
* **Compilation** — :meth:`DomainSchedule.expand_to_schedule` lowers a
  domain schedule to ordinary per-replica
  :class:`~repro.serving.faults.FaultSchedule` primitives. Both DES
  engines (``reference``/``vectorized``/native) consume the expanded
  schedule unchanged, so every bit-identity proof keeps holding; the
  crash-vs-partition distinction matters only to the shard-recovery model
  (:mod:`repro.serving.distributed`), which a router cannot observe
  anyway (a dead replica and an unreachable one refuse connections the
  same way).
* :func:`domain_storm` — a seeded generator of correlated storms, the
  domain-level sibling of :func:`~repro.serving.faults.fault_storm`.

Expansion is pure, deterministic and permutation-invariant: the expanded
schedule's injector tuples are canonically sorted, so two schedules with
the same events in any order expand identically
(``tests/test_domains.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .faults import FaultSchedule, ReplicaCrash, Straggler

#: Domain kinds, innermost to outermost. ``host`` is the blast radius of
#: an independent machine failure; ``rack`` shares power and a top-of-rack
#: switch; ``zone`` shares a power feed / network spine.
DOMAIN_HOST = "host"
DOMAIN_RACK = "rack"
DOMAIN_ZONE = "zone"
DOMAIN_KINDS = (DOMAIN_HOST, DOMAIN_RACK, DOMAIN_ZONE)


def _check_kind(kind: str) -> None:
    if kind not in DOMAIN_KINDS:
        raise ValueError(
            f"unknown domain kind {kind!r}; valid kinds: {DOMAIN_KINDS}"
        )


@dataclass(frozen=True)
class FleetTopology:
    """Deterministic replica → host → rack → zone assignment.

    Replica ``r`` lives on host ``r // replicas_per_host``; host ``h``
    sits in rack ``h // hosts_per_rack``; rack ``k`` belongs to zone
    ``k // racks_per_zone``. The assignment is pure arithmetic on the
    fleet size — no RNG — so a fleet of a given shape always maps to the
    same domains, and two runs over the same topology agree byte for
    byte.

    Attributes:
        num_replicas: replicas (model-serving processes) in the fleet.
        replicas_per_host: co-located replicas per physical host.
        hosts_per_rack: hosts sharing one rack (power + ToR switch).
        racks_per_zone: racks sharing one zone (power feed / spine).
    """

    num_replicas: int
    replicas_per_host: int = 1
    hosts_per_rack: int = 4
    racks_per_zone: int = 2

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("need at least one replica")
        for name in ("replicas_per_host", "hosts_per_rack", "racks_per_zone"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------- sizes

    @property
    def num_hosts(self) -> int:
        """Hosts actually occupied by the fleet."""
        return -(-self.num_replicas // self.replicas_per_host)

    @property
    def num_racks(self) -> int:
        """Racks actually occupied by the fleet."""
        return -(-self.num_hosts // self.hosts_per_rack)

    @property
    def num_zones(self) -> int:
        """Zones actually occupied by the fleet."""
        return -(-self.num_racks // self.racks_per_zone)

    def num_domains(self, kind: str) -> int:
        """Occupied domain count for one kind."""
        _check_kind(kind)
        if kind == DOMAIN_HOST:
            return self.num_hosts
        if kind == DOMAIN_RACK:
            return self.num_racks
        return self.num_zones

    # ------------------------------------------------------- assignment

    def host_of(self, replica_id: int) -> int:
        """Host holding ``replica_id``."""
        if not 0 <= replica_id < self.num_replicas:
            raise ValueError(f"replica {replica_id} outside fleet")
        return replica_id // self.replicas_per_host

    def rack_of(self, replica_id: int) -> int:
        """Rack holding ``replica_id``."""
        return self.host_of(replica_id) // self.hosts_per_rack

    def zone_of(self, replica_id: int) -> int:
        """Zone holding ``replica_id``."""
        return self.rack_of(replica_id) // self.racks_per_zone

    def domain_of(self, replica_id: int, kind: str) -> int:
        """Domain of ``kind`` holding ``replica_id``."""
        _check_kind(kind)
        if kind == DOMAIN_HOST:
            return self.host_of(replica_id)
        if kind == DOMAIN_RACK:
            return self.rack_of(replica_id)
        return self.zone_of(replica_id)

    def host_domain(self, host_id: int, kind: str) -> int:
        """Domain of ``kind`` holding ``host_id``."""
        _check_kind(kind)
        if not 0 <= host_id < self.num_hosts:
            raise ValueError(f"host {host_id} outside fleet")
        if kind == DOMAIN_HOST:
            return host_id
        rack = host_id // self.hosts_per_rack
        return rack if kind == DOMAIN_RACK else rack // self.racks_per_zone

    def replicas_in(self, kind: str, domain_id: int) -> tuple[int, ...]:
        """Replica ids inside one domain (ascending)."""
        _check_kind(kind)
        if not 0 <= domain_id < self.num_domains(kind):
            raise ValueError(
                f"{kind} {domain_id} outside topology "
                f"({self.num_domains(kind)} {kind}s)"
            )
        return tuple(
            r
            for r in range(self.num_replicas)
            if self.domain_of(r, kind) == domain_id
        )

    def hosts_in(self, kind: str, domain_id: int) -> tuple[int, ...]:
        """Host ids inside one domain (ascending)."""
        _check_kind(kind)
        if not 0 <= domain_id < self.num_domains(kind):
            raise ValueError(
                f"{kind} {domain_id} outside topology "
                f"({self.num_domains(kind)} {kind}s)"
            )
        return tuple(
            h
            for h in range(self.num_hosts)
            if self.host_domain(h, kind) == domain_id
        )


def diverse_domain_order(topology: FleetTopology, kind: str) -> tuple[int, ...]:
    """Domain ids ordered so *consecutive* entries diversify parents.

    Racks are interleaved across zones (rack 0 of zone 0, rack 0 of zone
    1, rack 1 of zone 0, ...) and hosts across zone-interleaved racks, so
    a placement walking this order in sequence puts adjacent copies in
    different parent domains — rack-spread copies also straddle zones
    whenever the fleet has more than one.
    """
    _check_kind(kind)
    if kind == DOMAIN_ZONE:
        return tuple(range(topology.num_zones))
    rack_order = sorted(
        range(topology.num_racks),
        key=lambda r: (r % topology.racks_per_zone, r // topology.racks_per_zone),
    )
    if kind == DOMAIN_RACK:
        return tuple(rack_order)
    rack_rank = {r: i for i, r in enumerate(rack_order)}
    return tuple(
        sorted(
            range(topology.num_hosts),
            key=lambda h: (
                h % topology.hosts_per_rack,
                rack_rank[h // topology.hosts_per_rack],
            ),
        )
    )


def best_spread(topology: FleetTopology, num_copies: int) -> str:
    """Widest domain kind that can hold ``num_copies`` distinct copies.

    Prefers ``zone`` over ``rack`` over ``host`` — the widest blast
    radius the topology can actually spread across. Raises when even
    host-level spread is infeasible (more copies than hosts).
    """
    if num_copies < 1:
        raise ValueError("need at least one copy")
    for kind in (DOMAIN_ZONE, DOMAIN_RACK, DOMAIN_HOST):
        if topology.num_domains(kind) >= num_copies:
            return kind
    raise ValueError(
        f"cannot spread {num_copies} copies across {topology.num_hosts} "
        f"hosts; shrink the replication factor or grow the fleet"
    )


# ----------------------------------------------------------- domain events


@dataclass(frozen=True)
class DomainCrash:
    """Every replica in the domain dies at ``at_s`` (power loss).

    In-memory state on the domain's hosts — including resident embedding
    shard copies — is destroyed; hosts restart ``downtime_s`` later but
    come back *cold* (the shard-recovery model re-streams lost copies).
    """

    kind: str
    domain_id: int
    at_s: float
    downtime_s: float

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.domain_id < 0:
            raise ValueError("domain_id must be non-negative")
        if self.at_s < 0:
            raise ValueError("crash time must be non-negative")
        if self.downtime_s <= 0:
            raise ValueError("downtime must be positive")


@dataclass(frozen=True)
class DomainPartition:
    """The domain is network-isolated for an interval (ToR/spine loss).

    Replicas inside are unreachable — to a router this is
    indistinguishable from a crash (connections are refused either way)
    — but their in-memory state *survives*: when the partition heals,
    shard copies inside are immediately live again with no re-streaming.
    """

    kind: str
    domain_id: int
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.domain_id < 0:
            raise ValueError("domain_id must be non-negative")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("partition interval must be non-negative/positive")


@dataclass(frozen=True)
class DomainSlowdown:
    """Every replica in the domain serves ``slowdown`` x slower.

    Models a shared-resource degradation with domain blast radius — a
    failing PSU browning out a rack, an oversubscribed spine link, a bad
    kernel rollout staged by zone.
    """

    kind: str
    domain_id: int
    start_s: float
    duration_s: float
    slowdown: float

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.domain_id < 0:
            raise ValueError("domain_id must be non-negative")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("slowdown interval must be non-negative/positive")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (use 1 for no effect)")


class DomainSchedule:
    """A composed, declarative set of domain-scoped fault events.

    Like :class:`~repro.serving.faults.FaultSchedule`, the schedule is
    immutable and purely declarative; unlike it, events name *domains*
    rather than replicas, and only become simulator-consumable after
    :meth:`expand_to_schedule` lowers them against a topology.
    """

    def __init__(
        self,
        crashes: tuple[DomainCrash, ...] | list[DomainCrash] = (),
        partitions: tuple[DomainPartition, ...] | list[DomainPartition] = (),
        slowdowns: tuple[DomainSlowdown, ...] | list[DomainSlowdown] = (),
    ) -> None:
        self.crashes = tuple(crashes)
        self.partitions = tuple(partitions)
        self.slowdowns = tuple(slowdowns)

    @classmethod
    def zero(cls) -> "DomainSchedule":
        """The empty schedule (injects nothing)."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when the schedule injects nothing."""
        return not (self.crashes or self.partitions or self.slowdowns)

    def validate(self, topology: FleetTopology) -> None:
        """Raise when any event names a domain outside ``topology``."""
        for event in (*self.crashes, *self.partitions, *self.slowdowns):
            limit = topology.num_domains(event.kind)
            if event.domain_id >= limit:
                raise ValueError(
                    f"{type(event).__name__} names {event.kind} "
                    f"{event.domain_id}, but the topology has only "
                    f"{limit} {event.kind}(s)"
                )

    def expand_to_schedule(self, topology: FleetTopology) -> FaultSchedule:
        """Lower domain events to per-replica fault primitives.

        Pure and deterministic: crashes *and* partitions become one
        :class:`~repro.serving.faults.ReplicaCrash` per replica in the
        domain (a router cannot tell dead from unreachable), slowdowns
        become one :class:`~repro.serving.faults.Straggler` per replica.
        The output tuples are canonically sorted, so expansion is
        invariant under permutation of the input events.
        """
        self.validate(topology)
        crashes = [
            ReplicaCrash(replica_id=r, at_s=c.at_s, downtime_s=c.downtime_s)
            for c in self.crashes
            for r in topology.replicas_in(c.kind, c.domain_id)
        ]
        crashes.extend(
            ReplicaCrash(
                replica_id=r, at_s=p.start_s, downtime_s=p.duration_s
            )
            for p in self.partitions
            for r in topology.replicas_in(p.kind, p.domain_id)
        )
        stragglers = [
            Straggler(
                replica_id=r,
                start_s=s.start_s,
                duration_s=s.duration_s,
                slowdown=s.slowdown,
            )
            for s in self.slowdowns
            for r in topology.replicas_in(s.kind, s.domain_id)
        ]
        crashes.sort(key=lambda c: (c.at_s, c.replica_id, c.downtime_s))
        stragglers.sort(
            key=lambda s: (s.start_s, s.replica_id, s.duration_s, s.slowdown)
        )
        return FaultSchedule(crashes=tuple(crashes), stragglers=tuple(stragglers))


def expand_to_schedule(
    schedule: DomainSchedule, topology: FleetTopology
) -> FaultSchedule:
    """Module-level alias of :meth:`DomainSchedule.expand_to_schedule`."""
    return schedule.expand_to_schedule(topology)


def domain_storm(
    topology: FleetTopology,
    duration_s: float,
    seed: int,
    kinds: tuple[str, ...] = (DOMAIN_HOST, DOMAIN_RACK),
    crash_count: int = 2,
    crash_downtime_frac: tuple[float, float] = (0.05, 0.2),
    partition_count: int = 1,
    partition_duration_frac: tuple[float, float] = (0.05, 0.2),
    slowdown_count: int = 1,
    slowdown_range: tuple[float, float] = (2.0, 8.0),
    slowdown_duration_frac: tuple[float, float] = (0.1, 0.4),
) -> DomainSchedule:
    """Draw a random *correlated* storm from a dedicated seeded stream.

    The domain-level sibling of
    :func:`~repro.serving.faults.fault_storm`: each event picks a kind
    uniformly from ``kinds`` and a domain uniformly within that kind, so
    a single draw can take out a whole rack. Interval lengths scale with
    ``duration_s`` exactly as in the independent storm.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not kinds:
        raise ValueError("need at least one domain kind")
    for kind in kinds:
        _check_kind(kind)
    rng = np.random.default_rng(seed)

    def interval_s(frac_range: tuple[float, float]) -> float:
        return duration_s * float(rng.uniform(*frac_range))

    def scope() -> tuple[str, int]:
        kind = kinds[int(rng.integers(len(kinds)))]
        return kind, int(rng.integers(topology.num_domains(kind)))

    crashes = []
    for _ in range(crash_count):
        kind, domain_id = scope()
        crashes.append(
            DomainCrash(
                kind=kind,
                domain_id=domain_id,
                at_s=float(rng.uniform(0.0, 0.8 * duration_s)),
                downtime_s=interval_s(crash_downtime_frac),
            )
        )
    partitions = []
    for _ in range(partition_count):
        kind, domain_id = scope()
        partitions.append(
            DomainPartition(
                kind=kind,
                domain_id=domain_id,
                start_s=float(rng.uniform(0.0, 0.8 * duration_s)),
                duration_s=interval_s(partition_duration_frac),
            )
        )
    slowdowns = []
    for _ in range(slowdown_count):
        kind, domain_id = scope()
        slowdowns.append(
            DomainSlowdown(
                kind=kind,
                domain_id=domain_id,
                start_s=float(rng.uniform(0.0, 0.7 * duration_s)),
                duration_s=interval_s(slowdown_duration_frac),
                slowdown=float(rng.uniform(*slowdown_range)),
            )
        )
    return DomainSchedule(
        crashes=tuple(crashes),
        partitions=tuple(partitions),
        slowdowns=tuple(slowdowns),
    )
