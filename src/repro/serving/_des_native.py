"""Self-compiled C kernel for the vectorized single-machine DES.

The kernel is an exact transliteration of the python loop in
:func:`repro.serving.des.run_simulator_vectorized` (itself bit-identical
to ``ServingSimulator._run_reference``): the same binary event heap with
``(time, seq)`` tie-breaking, the same ring-buffer queues, the same CoDel
control law, admission policies and fault multipliers, evaluated in the
same floating-point order. Two rules keep it bitwise-faithful:

* Standard normals come from the *python* generator through a refill
  callback (chunked ``standard_normal`` is bitwise equal to scalar
  draws), and the wrapper rolls the generator back and re-draws exactly
  the consumed count afterwards, so the RNG stream position matches the
  reference run.
* The source is compiled with ``-ffp-contract=off`` so ``mean + sigma*z``
  is never fused into an FMA; ``exp``/``sqrt`` resolve to the same libm
  that CPython's :mod:`math` wraps in-process.

Records stream out through a flush callback in 64Ki-row blocks of six
float64 columns and are reassembled into a
:class:`~repro.serving.des.RecordBatch`. When no C compiler is available
(or ``REPRO_DISABLE_NATIVE=1``), :func:`simulate_native` returns ``None``
and ``backend="auto"`` falls back to the batched python loop. Build
caching is shared with the cache-replay kernel via
:func:`repro.hw._native.compile_cached`.
"""

from __future__ import annotations

import ctypes
from typing import TYPE_CHECKING

import numpy as np

from ..hw._native import compile_cached

if TYPE_CHECKING:
    from .simulator import ServingSimulator

__all__ = ["native_available", "simulate_native"]

_FLUSH_ROWS = 65536

_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

typedef void (*norm_cb_t)(double *buf, i64 n);
typedef void (*rec_cb_t)(const double *rows, i64 n);

/* ------------------------------------------------------- event heap
   Min-heap ordered by (t, seq) — the exact total order of python's
   heapq over (end_s, dseq, instance, epoch) tuples, since dseq is
   unique. */
typedef struct {
    double t;
    i64 seq;
    i64 inst;
    i64 ep;
} Ev;

static inline int ev_less(const Ev *a, const Ev *b) {
    return a->t < b->t || (a->t == b->t && a->seq < b->seq);
}

static void heap_push(Ev *h, i64 *n, Ev e) {
    i64 i = (*n)++;
    h[i] = e;
    while (i > 0) {
        i64 p = (i - 1) / 2;
        if (!ev_less(&h[i], &h[p]))
            break;
        Ev tmp = h[p];
        h[p] = h[i];
        h[i] = tmp;
        i = p;
    }
}

static Ev heap_pop(Ev *h, i64 *n) {
    Ev top = h[0];
    h[0] = h[--(*n)];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1, r = l + 1, m = i;
        if (l < *n && ev_less(&h[l], &h[m]))
            m = l;
        if (r < *n && ev_less(&h[r], &h[m]))
            m = r;
        if (m == i)
            break;
        Ev tmp = h[m];
        h[m] = h[i];
        h[i] = tmp;
        i = m;
    }
    return top;
}

/* ------------------------------------------------------------ CoDel
   Mirror of repro.serving.overload.CoDelController.on_dequeue. */
typedef struct {
    double target;
    double interval;
    double first_above;
    double drop_next;
    i64 drop_count;
    int has_first_above;
    int dropping;
} CoDel;

static int codel_on_dequeue(CoDel *c, double sojourn, double now) {
    if (sojourn < c->target) {
        c->has_first_above = 0;
        c->dropping = 0;
        return 0;
    }
    if (c->dropping) {
        if (now >= c->drop_next) {
            c->drop_count++;
            c->drop_next = now + c->interval / sqrt((double)c->drop_count);
            return 1;
        }
        return 0;
    }
    if (!c->has_first_above) {
        c->has_first_above = 1;
        c->first_above = now + c->interval;
        return 0;
    }
    if (now >= c->first_above) {
        c->dropping = 1;
        c->drop_count++;
        c->drop_next = now + c->interval / sqrt((double)c->drop_count);
        return 1;
    }
    return 0;
}

/* ------------------------------------------------------- kernel state */
typedef struct {
    /* static pre-sorted events */
    const double *st_t;
    const i64 *st_kind;
    const i64 *st_inst;
    i64 n_static;
    i64 num_instances;
    double duration;
    i64 closed_loop;
    /* service-time params indexed by active-job level (1..N+1) */
    const double *svc_base;
    const double *svc_logmean;
    const double *svc_sigma;
    /* admission */
    i64 adm_present;
    i64 adm_capacity;
    i64 adm_reject_oldest;
    i64 adm_has_deadline;
    double adm_deadline;
    i64 codel_enabled;
    /* faults (interval ends and bandwidth multipliers precomputed) */
    i64 fault_active;
    i64 n_str;
    const i64 *str_rep;
    const double *str_start;
    const double *str_end;
    const double *str_slow;
    i64 n_bw;
    const i64 *bw_rep;
    const double *bw_start;
    const double *bw_end;
    const double *bw_mult;
    /* per-instance ring queues over one flat arrival-time buffer */
    double *qbuf;
    const i64 *qbase;
    const i64 *qcap;
    i64 *qhead;
    i64 *qlen;
    /* scratch */
    unsigned char *busy;
    unsigned char *down;
    i64 *epoch;
    double *cur; /* 5 doubles per instance: arrival,start,end,active,service */
    CoDel *codels;
    Ev *heap;
    i64 heap_n;
    i64 busy_count;
    i64 dseq;
    /* normals */
    norm_cb_t norm_cb;
    double *nbuf;
    i64 nbuf_size;
    i64 nbuf_pos;
    i64 normals_used;
    /* record flushing */
    rec_cb_t rec_cb;
    double *rows;
    i64 rows_n;
    /* counters */
    i64 offered_extra;
    i64 killed;
    i64 shed;
    i64 max_queue_depth;
} Des;

static double next_normal(Des *d) {
    if (d->nbuf_pos >= d->nbuf_size) {
        d->norm_cb(d->nbuf, d->nbuf_size);
        d->nbuf_pos = 0;
    }
    d->normals_used++;
    return d->nbuf[d->nbuf_pos++];
}

static double service_multiplier(const Des *d, i64 inst, double t) {
    double m = 1.0;
    for (i64 i = 0; i < d->n_str; ++i)
        if (d->str_rep[i] == inst && d->str_start[i] <= t &&
            t < d->str_end[i])
            m *= d->str_slow[i];
    for (i64 i = 0; i < d->n_bw; ++i) {
        if (d->bw_rep[i] >= 0 && d->bw_rep[i] != inst)
            continue;
        if (d->bw_start[i] <= t && t < d->bw_end[i])
            m *= d->bw_mult[i];
    }
    return m;
}

static void q_push(Des *d, i64 inst, double t) {
    i64 cap = d->qcap[inst];
    d->qbuf[d->qbase[inst] + (d->qhead[inst] + d->qlen[inst]) % cap] = t;
    d->qlen[inst]++;
}

static double q_popleft(Des *d, i64 inst) {
    double t = d->qbuf[d->qbase[inst] + d->qhead[inst]];
    d->qhead[inst] = (d->qhead[inst] + 1) % d->qcap[inst];
    d->qlen[inst]--;
    return t;
}

/* admission.admit(): 1 = enqueue the arrival, 0 = shed it. */
static int admit(Des *d, i64 inst) {
    i64 depth = d->qlen[inst];
    if (d->adm_has_deadline) {
        double expected = d->svc_base[d->busy_count + 1];
        if ((double)(depth + 2) * expected > d->adm_deadline) {
            d->shed++;
            return 0;
        }
    }
    if (depth >= d->adm_capacity) {
        if (d->adm_reject_oldest) {
            q_popleft(d, inst);
            d->shed++;
            return 1;
        }
        d->shed++;
        return 0;
    }
    return 1;
}

/* next_arrival(): CoDel-filtered dequeue; 0 when the queue drains. */
static int next_arrival(Des *d, i64 inst, double now, double *arrival) {
    while (d->qlen[inst] > 0) {
        double a = q_popleft(d, inst);
        if (d->codel_enabled &&
            codel_on_dequeue(&d->codels[inst], now - a, now)) {
            d->shed++;
            continue;
        }
        *arrival = a;
        return 1;
    }
    return 0;
}

static void dispatch(Des *d, i64 inst, double arrival, double now) {
    i64 active = d->busy_count + 1;
    double z = next_normal(d);
    double service =
        d->svc_base[active] *
        exp(d->svc_logmean[active] + d->svc_sigma[active] * z);
    if (d->fault_active)
        service *= service_multiplier(d, inst, now);
    d->busy[inst] = 1;
    d->busy_count++;
    double end = now + service;
    double *c = d->cur + inst * 5;
    c[0] = arrival;
    c[1] = now;
    c[2] = end;
    c[3] = (double)active;
    c[4] = service;
    Ev e = {end, d->dseq++, inst, d->epoch[inst]};
    heap_push(d->heap, &d->heap_n, e);
}

static void emit_record(Des *d, i64 inst) {
    const double *c = d->cur + inst * 5;
    double *r = d->rows + d->rows_n * 6;
    r[0] = (double)inst;
    r[1] = c[0];
    r[2] = c[1];
    r[3] = c[2];
    r[4] = c[3];
    r[5] = c[4];
    if (++d->rows_n == 65536) {
        d->rec_cb(d->rows, d->rows_n);
        d->rows_n = 0;
    }
}

void repro_des(const double *st_t, const i64 *st_kind, const i64 *st_inst,
               i64 n_static, i64 num_instances, double duration,
               i64 closed_loop, const double *svc_base,
               const double *svc_logmean, const double *svc_sigma,
               i64 adm_present, i64 adm_capacity, i64 adm_reject_oldest,
               i64 adm_has_deadline, double adm_deadline, i64 codel_enabled,
               double codel_target, double codel_interval, i64 fault_active,
               i64 n_str, const i64 *str_rep, const double *str_start,
               const double *str_end, const double *str_slow, i64 n_bw,
               const i64 *bw_rep, const double *bw_start,
               const double *bw_end, const double *bw_mult, double *qbuf,
               const i64 *qbase, const i64 *qcap, norm_cb_t norm_cb,
               rec_cb_t rec_cb, i64 *out) {
    Des d;
    memset(&d, 0, sizeof(d));
    d.st_t = st_t;
    d.st_kind = st_kind;
    d.st_inst = st_inst;
    d.n_static = n_static;
    d.num_instances = num_instances;
    d.duration = duration;
    d.closed_loop = closed_loop;
    d.svc_base = svc_base;
    d.svc_logmean = svc_logmean;
    d.svc_sigma = svc_sigma;
    d.adm_present = adm_present;
    d.adm_capacity = adm_capacity;
    d.adm_reject_oldest = adm_reject_oldest;
    d.adm_has_deadline = adm_has_deadline;
    d.adm_deadline = adm_deadline;
    d.codel_enabled = codel_enabled;
    d.fault_active = fault_active;
    d.n_str = n_str;
    d.str_rep = str_rep;
    d.str_start = str_start;
    d.str_end = str_end;
    d.str_slow = str_slow;
    d.n_bw = n_bw;
    d.bw_rep = bw_rep;
    d.bw_start = bw_start;
    d.bw_end = bw_end;
    d.bw_mult = bw_mult;
    d.qbuf = qbuf;
    d.qbase = qbase;
    d.qcap = qcap;
    d.norm_cb = norm_cb;
    d.rec_cb = rec_cb;

    i64 n_crash = 0;
    for (i64 i = 0; i < n_static; ++i)
        if (st_kind[i] == 2)
            n_crash++;

    i64 N = num_instances;
    d.qhead = calloc((size_t)N, sizeof(i64));
    d.qlen = calloc((size_t)N, sizeof(i64));
    d.busy = calloc((size_t)N, 1);
    d.down = calloc((size_t)N, 1);
    d.epoch = calloc((size_t)N, sizeof(i64));
    d.cur = calloc((size_t)N * 5, sizeof(double));
    d.codels = calloc((size_t)N, sizeof(CoDel));
    d.heap = malloc((size_t)(N + n_crash + 2) * sizeof(Ev));
    d.nbuf_size = 8192;
    d.nbuf = malloc((size_t)d.nbuf_size * sizeof(double));
    d.nbuf_pos = d.nbuf_size;
    d.rows = malloc((size_t)65536 * 6 * sizeof(double));
    for (i64 i = 0; i < N; ++i) {
        d.codels[i].target = codel_target;
        d.codels[i].interval = codel_interval;
    }

    i64 si = 0;
    while (si < n_static || d.heap_n > 0) {
        if (si < n_static &&
            (d.heap_n == 0 || st_t[si] <= d.heap[0].t)) {
            double now = st_t[si];
            i64 kind = st_kind[si];
            i64 inst = st_inst[si];
            si++;
            if (kind == 0) { /* arrival */
                if (now >= duration)
                    continue;
                if (d.busy[inst] || d.down[inst]) {
                    if (adm_present && !admit(&d, inst))
                        continue;
                    q_push(&d, inst, now);
                    if (d.qlen[inst] > d.max_queue_depth)
                        d.max_queue_depth = d.qlen[inst];
                } else {
                    dispatch(&d, inst, now, now);
                }
            } else if (kind == 2) { /* replica crash */
                d.down[inst] = 1;
                d.epoch[inst]++;
                if (d.busy[inst]) {
                    d.killed++;
                    d.busy[inst] = 0;
                    d.busy_count--;
                }
            } else { /* kind == 3: replica restart */
                d.down[inst] = 0;
                if (now >= duration)
                    continue;
                double arrival;
                if (next_arrival(&d, inst, now, &arrival)) {
                    dispatch(&d, inst, arrival, now);
                } else if (closed_loop && !d.busy[inst]) {
                    d.offered_extra++;
                    dispatch(&d, inst, now, now);
                }
            }
        } else { /* completion */
            Ev e = heap_pop(d.heap, &d.heap_n);
            if (e.ep != d.epoch[e.inst])
                continue; /* killed by a crash */
            double now = e.t;
            i64 inst = e.inst;
            emit_record(&d, inst);
            d.busy[inst] = 0;
            d.busy_count--;
            if (now >= duration)
                continue;
            double arrival;
            if (next_arrival(&d, inst, now, &arrival)) {
                dispatch(&d, inst, arrival, now);
            } else if (closed_loop) {
                d.offered_extra++;
                dispatch(&d, inst, now, now);
            }
        }
    }

    if (d.rows_n > 0)
        d.rec_cb(d.rows, d.rows_n);
    i64 leftover = 0;
    for (i64 i = 0; i < N; ++i)
        leftover += d.qlen[i];
    out[0] = d.offered_extra;
    out[1] = d.killed;
    out[2] = d.shed;
    out[3] = d.max_queue_depth;
    out[4] = leftover;
    out[5] = d.normals_used;

    free(d.qhead);
    free(d.qlen);
    free(d.busy);
    free(d.down);
    free(d.epoch);
    free(d.cur);
    free(d.codels);
    free(d.heap);
    free(d.nbuf);
    free(d.rows);
}
"""

_F64P = ctypes.POINTER(ctypes.c_double)
_I64P = ctypes.POINTER(ctypes.c_int64)
_NORM_CB = ctypes.CFUNCTYPE(None, _F64P, ctypes.c_int64)
_REC_CB = ctypes.CFUNCTYPE(None, _F64P, ctypes.c_int64)

_CACHED: tuple[bool, ctypes.CDLL | None] | None = None


def _load() -> ctypes.CDLL | None:
    global _CACHED
    if _CACHED is not None:
        return _CACHED[1]
    try:
        # -ffp-contract=off: the service-draw expression mean + sigma*z
        # must not be fused into an FMA, or native drifts from python
        # by one ulp on architectures where GCC contracts by default.
        path = compile_cached(
            _C_SOURCE, "repro_des", extra_flags=("-ffp-contract=off",)
        )
        lib = ctypes.CDLL(str(path)) if path else None
    except OSError:
        lib = None
    if lib is not None:
        lib.repro_des.restype = None
        lib.repro_des.argtypes = [
            _F64P, _I64P, _I64P,                      # static events
            ctypes.c_int64, ctypes.c_int64,           # n_static, N
            ctypes.c_double, ctypes.c_int64,          # duration, closed_loop
            _F64P, _F64P, _F64P,                      # svc params
            ctypes.c_int64, ctypes.c_int64,           # adm present, capacity
            ctypes.c_int64, ctypes.c_int64,           # reject_oldest, has_dl
            ctypes.c_double, ctypes.c_int64,          # deadline, codel on
            ctypes.c_double, ctypes.c_double,         # codel target, interval
            ctypes.c_int64, ctypes.c_int64,           # fault_active, n_str
            _I64P, _F64P, _F64P, _F64P,               # straggler arrays
            ctypes.c_int64,                           # n_bw
            _I64P, _F64P, _F64P, _F64P,               # bandwidth arrays
            _F64P, _I64P, _I64P,                      # queue buffer/base/cap
            _NORM_CB, _REC_CB, _I64P,                 # callbacks, out[6]
        ]
    _CACHED = (lib is not None, lib)
    return lib


def native_available() -> bool:
    """Whether the C kernel can be (or was) built on this host."""
    return _load() is not None


def _as_f64(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


def _as_i64(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


def simulate_native(
    sim: "ServingSimulator",
    duration_s: float,
    offered: int,
    st_t: list[float],
    st_kind: list[int],
    st_inst: list[int],
):
    """Run the simulator loop natively; ``None`` when unavailable.

    Returns ``(records, offered, killed, shed, max_queue_depth,
    leftover_depth)`` with the RNG left at the reference stream position.
    """
    lib = _load()
    if lib is None:
        return None
    rng = sim._rng
    num_instances = sim.num_instances

    times = _as_f64(st_t)
    kinds = _as_i64(st_kind)
    insts = _as_i64(st_inst)

    # Service-time parameters per active-job level. The admission deadline
    # check can probe level N+1 (all instances busy); _base_latency and
    # noise_sigma are pure, so eager evaluation matches the lazy cache.
    levels = num_instances + 2
    svc_base = np.zeros(levels, dtype=np.float64)
    svc_logmean = np.zeros(levels, dtype=np.float64)
    svc_sigma = np.zeros(levels, dtype=np.float64)
    for active in range(1, levels):
        base_s = sim._base_latency(active).total_seconds
        sigma = sim.noise_sigma(active)
        svc_base[active] = base_s
        svc_logmean[active] = -0.5 * sigma**2
        svc_sigma[active] = sigma

    admission = sim.overload.admission if sim.overload is not None else None
    adm_present = admission is not None
    adm_capacity = admission.queue_capacity if adm_present else 0
    adm_reject_oldest = adm_present and admission.shed_policy == "reject_oldest"
    adm_has_deadline = (
        adm_present
        and admission.shed_policy == "deadline_aware"
        and admission.deadline_s is not None
    )
    adm_deadline = admission.deadline_s if adm_has_deadline else 0.0
    codel_enabled = adm_present and admission.codel_target_s is not None
    codel_target = admission.codel_target_s if codel_enabled else 1.0
    codel_interval = admission.codel_interval_s if codel_enabled else 1.0

    faults = sim.faults
    fault_active = faults is not None and not faults.is_zero
    memory_fraction = sim._memory_fraction
    if fault_active:
        stragglers = faults.stragglers
        str_rep = _as_i64([s.replica_id for s in stragglers])
        str_start = _as_f64([s.start_s for s in stragglers])
        str_end = _as_f64([s.start_s + s.duration_s for s in stragglers])
        str_slow = _as_f64([s.slowdown for s in stragglers])
        bws = faults.bandwidth_faults
        bw_rep = _as_i64(
            [-1 if b.replica_id is None else b.replica_id for b in bws]
        )
        bw_start = _as_f64([b.start_s for b in bws])
        bw_end = _as_f64([b.start_s + b.duration_s for b in bws])
        # Amdahl stretch on the memory-bound share, computed once per
        # fault in the exact float order of service_multiplier().
        bw_mult = _as_f64(
            [
                1.0 + memory_fraction * (1.0 / b.bandwidth_fraction - 1.0)
                for b in bws
            ]
        )
    else:
        str_rep = bw_rep = _as_i64([])
        str_start = str_end = str_slow = _as_f64([])
        bw_start = bw_end = bw_mult = _as_f64([])

    # Flat ring-queue storage: an instance's queue can never exceed its
    # static arrival count (only kind-0 events enqueue).
    arrival_counts = np.bincount(
        insts[kinds == 0], minlength=num_instances
    ).astype(np.int64)
    qcap = arrival_counts + 1
    qbase = np.zeros(num_instances, dtype=np.int64)
    np.cumsum(qcap[:-1], out=qbase[1:])
    qbuf = np.zeros(int(qcap.sum()), dtype=np.float64)

    state0 = rng.bit_generator.state
    chunks: list[np.ndarray] = []

    def _norm_fill(buf_ptr, n):
        block = rng.standard_normal(int(n))
        ctypes.memmove(
            buf_ptr, block.ctypes.data, int(n) * ctypes.sizeof(ctypes.c_double)
        )

    def _rec_flush(rows_ptr, n):
        flat = np.ctypeslib.as_array(rows_ptr, shape=(int(n) * 6,))
        chunks.append(flat.copy())

    out = np.zeros(6, dtype=np.int64)
    lib.repro_des(
        times.ctypes.data_as(_F64P),
        kinds.ctypes.data_as(_I64P),
        insts.ctypes.data_as(_I64P),
        times.size,
        num_instances,
        float(duration_s),
        int(sim.per_instance_qps is None),
        svc_base.ctypes.data_as(_F64P),
        svc_logmean.ctypes.data_as(_F64P),
        svc_sigma.ctypes.data_as(_F64P),
        int(adm_present),
        int(adm_capacity),
        int(adm_reject_oldest),
        int(adm_has_deadline),
        float(adm_deadline),
        int(codel_enabled),
        float(codel_target),
        float(codel_interval),
        int(fault_active),
        str_rep.size,
        str_rep.ctypes.data_as(_I64P),
        str_start.ctypes.data_as(_F64P),
        str_end.ctypes.data_as(_F64P),
        str_slow.ctypes.data_as(_F64P),
        bw_rep.size,
        bw_rep.ctypes.data_as(_I64P),
        bw_start.ctypes.data_as(_F64P),
        bw_end.ctypes.data_as(_F64P),
        bw_mult.ctypes.data_as(_F64P),
        qbuf.ctypes.data_as(_F64P),
        qbase.ctypes.data_as(_I64P),
        qcap.ctypes.data_as(_I64P),
        _NORM_CB(_norm_fill),
        _REC_CB(_rec_flush),
        out.ctypes.data_as(_I64P),
    )

    # Re-synchronise the generator to the scalar draw count, exactly as
    # NormalStream.close() does.
    rng.bit_generator.state = state0
    normals_used = int(out[5])
    if normals_used:
        rng.standard_normal(normals_used)

    from .des import RecordBatch

    if chunks:
        data = np.concatenate(chunks).reshape(-1, 6)
    else:
        data = np.empty((0, 6), dtype=np.float64)
    records = RecordBatch.from_columns(
        data[:, 0], data[:, 1], data[:, 2], data[:, 3], data[:, 4], data[:, 5]
    )
    return (
        records,
        offered + int(out[0]),
        int(out[1]),
        int(out[2]),
        int(out[3]),
        int(out[4]),
    )
