"""Serving metrics: SLA and latency-bounded throughput.

The paper's first takeaway: latency alone is insufficient for benchmarking
data-center inference — what matters is *latency-bounded throughput*, the
number of items ranked per second while meeting the service-level agreement
(SLA, tens to hundreds of milliseconds for recommendation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SLA:
    """A latency service-level agreement.

    Attributes:
        deadline_s: the latency bound.
        percentile: the fraction of requests that must meet it (e.g. 0.99).
    """

    deadline_s: float
    percentile: float = 0.99

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 < self.percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")

    def is_met(self, latencies_s) -> bool:
        """True if the required percentile of ``latencies_s`` is in bound."""
        arr = np.asarray(list(latencies_s), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("no latencies to evaluate")
        return float(np.percentile(arr, self.percentile * 100)) <= self.deadline_s


#: SLA regimes cited by the paper: ~10 ms for search-style low-latency
#: services, hundreds of ms for throughput-oriented ranking.
SEARCH_SLA = SLA(deadline_s=0.010)
RANKING_SLA = SLA(deadline_s=0.450)


@dataclass(frozen=True)
class ThroughputPoint:
    """One point on a latency/throughput frontier (Figure 10)."""

    num_jobs: int
    latency_s: float
    items_per_s: float
    meets_sla: bool


def latency_bounded_throughput(points: list[ThroughputPoint]) -> ThroughputPoint | None:
    """The highest-throughput point that still meets the SLA, if any."""
    feasible = [p for p in points if p.meets_sla]
    if not feasible:
        return None
    return max(feasible, key=lambda p: p.items_per_s)
