"""Batched serving simulation: query streams → batches → inference.

Connects the paper's two levers (Section III): *batching* raises FC
compute density (Figure 8) but adds queueing delay; the SLA decides how
much batching a service can afford. :class:`BatchedServer` simulates an
open-loop query stream through a size/timeout batcher feeding one model
instance, and reports per-query latency (wait + service) plus
latency-bounded throughput — letting users sweep ``max_batch`` and find
the SLA-optimal operating point per server generation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..analysis.distributions import LatencySummary, summarize
from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .batcher import Batch, Batcher, batch_stream
from .loadgen import PoissonLoadGenerator
from .metrics import SLA


@dataclass(frozen=True)
class BatchedServingResult:
    """Outcome of one batched-serving simulation.

    ``shed`` counts queries refused by backpressure (the model's batch
    backlog was at ``queue_capacity`` when they arrived); 0 when
    unbounded.
    """

    server_name: str
    model_name: str
    max_batch: int
    offered_qps: float
    query_latencies_s: np.ndarray
    items_served: int
    duration_s: float
    mean_batch_size: float
    shed: int = 0

    def summary(self) -> LatencySummary:
        """Per-query latency percentiles (wait + inference)."""
        return summarize(self.query_latencies_s)

    def throughput_items_per_s(self) -> float:
        """Items ranked per second."""
        return self.items_served / self.duration_s

    def meets(self, sla: SLA) -> bool:
        """Whether the query-latency distribution satisfies the SLA."""
        return sla.is_met(self.query_latencies_s)


class BatchedServer:
    """One model instance behind a batcher on a simulated server.

    Args:
        server: server generation.
        config: model served.
        max_batch: batcher size threshold (items).
        max_wait_s: batcher timeout.
        items_per_query: user-post pairs carried by each query.
        tracer: optional :class:`~repro.obs.tracer.Tracer`. Each simulated
            batch becomes a ``serving.batch.request`` span (first arrival
            to completion) with ``collect``/``wait``/``service`` children
            on the batcher and model tracks. The default nil tracer
            records nothing and never perturbs the simulation.
        queue_capacity: backpressure bound on formed-but-unfinished
            batches. When the model instance already has this many
            batches in flight, the batcher stops accepting and new
            queries are shed at arrival (propagated upstream) instead of
            queueing without bound. ``None`` (the default) reproduces the
            historical unbounded run bit for bit.
    """

    def __init__(
        self,
        server: ServerSpec,
        config: ModelConfig,
        max_batch: int = 32,
        max_wait_s: float = 0.001,
        items_per_query: int = 1,
        tracer: Tracer | NullTracer | None = None,
        queue_capacity: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        self.queue_capacity = queue_capacity
        self.server = server
        self.config = config
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.items_per_query = items_per_query
        self.tracer = as_tracer(tracer)
        self.timing = TimingModel(server)
        self._latency_cache: dict[int, float] = {}

    def _service_s(self, items: int) -> float:
        if items not in self._latency_cache:
            self._latency_cache[items] = self.timing.model_latency(
                self.config, items
            ).total_seconds
        return self._latency_cache[items]

    def simulate(
        self, offered_qps: float, duration_s: float = 1.0, seed: int = 0
    ) -> BatchedServingResult:
        """Run an open-loop Poisson stream through batcher + model."""
        if offered_qps <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        queries = PoissonLoadGenerator(
            offered_qps, num_items=self.items_per_query, seed=seed
        ).generate(duration_s)
        if not queries:
            raise ValueError("no queries generated; raise rate or duration")

        tracer = self.tracer
        if tracer.enabled:
            tracer.set_track_name(0, "batcher")
            tracer.set_track_name(1, "model")

        free_at = 0.0
        latencies: list[float] = []
        items = 0
        batch_sizes: list[int] = []
        shed = 0

        def serve(batch: Batch) -> float:
            """Run one batch on the model; returns its completion time."""
            nonlocal free_at, items
            start = max(batch.formed_at_s, free_at)
            service = self._service_s(batch.num_items)
            done = start + service
            free_at = done
            for query in batch.queries:
                latencies.append(done - query.arrival_s)
            items += batch.num_items
            batch_sizes.append(batch.num_items)
            if tracer.enabled:
                first_arrival_s = batch.queries[0].arrival_s
                batch_id = tracer.begin(
                    "serving.batch.request",
                    first_arrival_s,
                    track=0,
                    num_items=batch.num_items,
                )
                tracer.complete(
                    "serving.batch.collect",
                    first_arrival_s,
                    batch.formed_at_s,
                    parent_id=batch_id,
                    track=0,
                )
                if start > batch.formed_at_s:
                    tracer.complete(
                        "serving.batch.wait",
                        batch.formed_at_s,
                        start,
                        parent_id=batch_id,
                        track=0,
                    )
                tracer.complete(
                    "serving.batch.service",
                    start,
                    done,
                    parent_id=batch_id,
                    track=1,
                    num_items=batch.num_items,
                )
                tracer.end(batch_id, done)
            return done

        if self.queue_capacity is None:
            for batch in batch_stream(queries, self.max_batch, self.max_wait_s):
                serve(batch)
        else:
            # Backpressure path: the batcher only dispatches into a
            # bounded backlog of formed batches; while the model has
            # ``queue_capacity`` batches in flight, arriving queries are
            # refused at admission (shed upstream) rather than absorbed.
            batcher = Batcher(max_items=self.max_batch, max_wait_s=self.max_wait_s)
            # Completion-time min-heap. The monotonic sequence number makes
            # ties at equal completion times pop in push order explicitly,
            # so the heap's order never depends on heapq internals.
            in_flight: list[tuple[float, int]] = []
            seq = 0
            for query in sorted(queries, key=lambda q: q.arrival_s):
                now = query.arrival_s
                while in_flight and in_flight[0][0] <= now:
                    heapq.heappop(in_flight)
                timed_out = batcher.poll(now)
                if timed_out is not None:
                    heapq.heappush(in_flight, (serve(timed_out), seq))
                    seq += 1
                    while in_flight and in_flight[0][0] <= now:
                        heapq.heappop(in_flight)
                if len(in_flight) >= self.queue_capacity:
                    shed += 1
                    continue
                formed = batcher.offer(query)
                if formed is not None:
                    heapq.heappush(in_flight, (serve(formed), seq))
                    seq += 1
            tail = batcher.flush(queries[-1].arrival_s + self.max_wait_s)
            if tail is not None:
                serve(tail)

        return BatchedServingResult(
            server_name=self.server.name,
            model_name=self.config.name,
            max_batch=self.max_batch,
            offered_qps=offered_qps,
            query_latencies_s=np.asarray(latencies),
            items_served=items,
            duration_s=duration_s,
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            shed=shed,
        )


def batching_sweep(
    server: ServerSpec,
    config: ModelConfig,
    offered_qps: float,
    max_batches: list[int],
    sla: SLA,
    duration_s: float = 1.0,
    max_wait_s: float = 0.002,
    seed: int = 0,
) -> list[BatchedServingResult]:
    """Simulate a sweep of batcher size limits at fixed offered load."""
    return [
        BatchedServer(server, config, max_batch=b, max_wait_s=max_wait_s).simulate(
            offered_qps, duration_s, seed
        )
        for b in max_batches
    ]


def best_max_batch(
    results: list[BatchedServingResult], sla: SLA
) -> BatchedServingResult | None:
    """The highest-throughput sweep point that meets the SLA."""
    feasible = [r for r in results if r.meets(sla)]
    if not feasible:
        return None
    return max(feasible, key=lambda r: r.throughput_items_per_s())
