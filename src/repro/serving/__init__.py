"""Serving substrate: load generation, batching, co-location, scheduling."""

from .batch_serving import (
    BatchedServer,
    BatchedServingResult,
    batching_sweep,
    best_max_batch,
)
from .autoscaler import (
    Autoscaler,
    AutoscaleResult,
    DiurnalLoad,
    static_provisioning,
)
from .batcher import Batch, Batcher, batch_stream
from .cluster import (
    ClusterPlan,
    MachinePool,
    WorkloadDemand,
    aware_capacity,
    blind_capacity,
    heterogeneity_gain,
)
from .distributed import (
    DistributedLatency,
    NetworkConfig,
    ShardPlan,
    distributed_latency,
    min_shards_for_capacity,
    shard_tables,
    sharding_sweep,
)
from .fleet import (
    CNN_OPERATOR_FRACTIONS,
    Fleet,
    FleetService,
    RNN_OPERATOR_FRACTIONS,
    production_fleet,
)
from .loadgen import ClosedLoopLoadGenerator, PoissonLoadGenerator, Query
from .metrics import (
    RANKING_SLA,
    SEARCH_SLA,
    SLA,
    ThroughputPoint,
    latency_bounded_throughput,
)
from .mixed_colocation import (
    GroupingComparison,
    JobSpec,
    PlacedJob,
    compare_groupings,
    machine_latencies,
    machine_throughput,
)
from .pipeline import (
    FilterRankPipeline,
    PipelineLatencyEstimate,
    PipelineResult,
    estimate_pipeline_latency,
)
from .placement_optimizer import (
    PlacementSolution,
    greedy_placement,
    optimize_placement,
    round_robin_placement,
)
from .provisioning import (
    DEFAULT_PRICES,
    PricedGeneration,
    ProvisioningPlan,
    provision_min_cost,
    single_generation_cost,
)
from .ranking_quality import ndcg_at_k, pipeline_quality, recall_at_k
from .router import (
    POLICIES,
    RequestRouter,
    RoutingResult,
    compare_policies,
)
from .scheduler import (
    PlacementDecision,
    best_placement,
    colocation_sweep,
    route_to_best_server,
)
from .simulator import InferenceRecord, ServingSimulator, SimulationResult

__all__ = [
    "Autoscaler",
    "AutoscaleResult",
    "DiurnalLoad",
    "static_provisioning",
    "BatchedServer",
    "BatchedServingResult",
    "batching_sweep",
    "best_max_batch",
    "DistributedLatency",
    "NetworkConfig",
    "ShardPlan",
    "distributed_latency",
    "min_shards_for_capacity",
    "shard_tables",
    "sharding_sweep",
    "Batch",
    "Batcher",
    "batch_stream",
    "ClusterPlan",
    "MachinePool",
    "WorkloadDemand",
    "aware_capacity",
    "blind_capacity",
    "heterogeneity_gain",
    "CNN_OPERATOR_FRACTIONS",
    "Fleet",
    "FleetService",
    "RNN_OPERATOR_FRACTIONS",
    "production_fleet",
    "ClosedLoopLoadGenerator",
    "PoissonLoadGenerator",
    "Query",
    "RANKING_SLA",
    "SEARCH_SLA",
    "SLA",
    "ThroughputPoint",
    "latency_bounded_throughput",
    "GroupingComparison",
    "JobSpec",
    "PlacedJob",
    "compare_groupings",
    "machine_latencies",
    "machine_throughput",
    "FilterRankPipeline",
    "PipelineLatencyEstimate",
    "PipelineResult",
    "estimate_pipeline_latency",
    "PlacementSolution",
    "greedy_placement",
    "optimize_placement",
    "round_robin_placement",
    "DEFAULT_PRICES",
    "PricedGeneration",
    "ProvisioningPlan",
    "provision_min_cost",
    "single_generation_cost",
    "ndcg_at_k",
    "pipeline_quality",
    "recall_at_k",
    "POLICIES",
    "RequestRouter",
    "RoutingResult",
    "compare_policies",
    "PlacementDecision",
    "best_placement",
    "colocation_sweep",
    "route_to_best_server",
    "InferenceRecord",
    "ServingSimulator",
    "SimulationResult",
]
