"""The two-step filtering → ranking recommendation pipeline (Figure 6).

Content is ranked hierarchically: a lightweight model (RMC1) filters
thousands of candidate posts down by orders of magnitude, then a
heavyweight model (RMC2/RMC3) ranks the survivors and the top tens are
shown. This module provides both an *executable* pipeline over real
:class:`~repro.core.model.RecommendationModel` instances and an analytical
latency estimate over production-scale configs via the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..core.model import RecommendationModel
from ..data.dataset import InputGenerator
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one filtering → ranking pass.

    ``shed_candidates`` counts candidates dropped at admission by the
    pipeline's ``max_candidates`` backpressure bound (0 when unbounded).
    """

    candidate_count: int
    filtered_count: int
    returned_count: int
    selected_indices: tuple[int, ...]
    scores: tuple[float, ...]
    filter_seconds: float
    rank_seconds: float
    shed_candidates: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline wall time."""
        return self.filter_seconds + self.rank_seconds


class FilterRankPipeline:
    """Executable two-stage recommendation over synthetic candidates.

    Args:
        filter_model: lightweight scoring model (RMC1-class).
        rank_model: heavyweight ranking model (RMC2/RMC3-class).
        filter_keep: candidates surviving the filtering step.
        final_keep: posts ultimately returned ("top tens").
        batch_size: inference batch for both stages.
        max_candidates: backpressure bound on the filtering stage's
            admission — a request carrying more candidates than this has
            the excess shed at the door (reported as
            ``shed_candidates``) instead of the filter stage absorbing
            unbounded work. ``None`` (the default) scores every
            candidate, as before.
    """

    def __init__(
        self,
        filter_model: RecommendationModel,
        rank_model: RecommendationModel,
        filter_keep: int = 64,
        final_keep: int = 10,
        batch_size: int = 64,
        max_candidates: int | None = None,
    ) -> None:
        if final_keep > filter_keep:
            raise ValueError("final_keep cannot exceed filter_keep")
        if filter_keep < 1 or final_keep < 1 or batch_size < 1:
            raise ValueError("pipeline sizes must be positive")
        if max_candidates is not None and max_candidates < filter_keep:
            raise ValueError("max_candidates must be at least filter_keep")
        self.filter_model = filter_model
        self.rank_model = rank_model
        self.filter_keep = filter_keep
        self.final_keep = final_keep
        self.batch_size = batch_size
        self.max_candidates = max_candidates

    def _score(self, model: RecommendationModel, generator: InputGenerator, count: int):
        """Score ``count`` candidates in batches; returns scores + seconds."""
        scores = np.empty(count, dtype=np.float32)
        seconds = 0.0
        done = 0
        while done < count:
            size = min(self.batch_size, count - done)
            dense, sparse = generator.batch(size)
            out, profile = model.forward_profiled(dense, sparse)
            scores[done : done + size] = out
            seconds += profile.total_seconds
            done += size
        return scores, seconds

    def recommend(self, candidate_count: int, seed: int = 0) -> PipelineResult:
        """Filter and rank ``candidate_count`` synthetic candidates."""
        if candidate_count < self.filter_keep:
            raise ValueError("candidate_count must be at least filter_keep")
        shed_candidates = 0
        if (
            self.max_candidates is not None
            and candidate_count > self.max_candidates
        ):
            shed_candidates = candidate_count - self.max_candidates
            candidate_count = self.max_candidates
        filter_gen = InputGenerator(self.filter_model.config, seed=seed)
        filter_scores, filter_seconds = self._score(
            self.filter_model, filter_gen, candidate_count
        )
        keep = np.argsort(filter_scores)[::-1][: self.filter_keep]

        rank_gen = InputGenerator(self.rank_model.config, seed=seed + 1)
        rank_scores, rank_seconds = self._score(
            self.rank_model, rank_gen, self.filter_keep
        )
        order = np.argsort(rank_scores)[::-1][: self.final_keep]
        selected = keep[order]
        return PipelineResult(
            candidate_count=candidate_count,
            filtered_count=self.filter_keep,
            returned_count=self.final_keep,
            selected_indices=tuple(int(i) for i in selected),
            scores=tuple(float(rank_scores[i]) for i in order),
            filter_seconds=filter_seconds,
            rank_seconds=rank_seconds,
            shed_candidates=shed_candidates,
        )


@dataclass(frozen=True)
class PipelineLatencyEstimate:
    """Analytic per-query latency of the two-stage pipeline on a server."""

    server_name: str
    filter_seconds: float
    rank_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline latency."""
        return self.filter_seconds + self.rank_seconds


def estimate_pipeline_latency(
    server: ServerSpec,
    filter_config: ModelConfig,
    rank_config: ModelConfig,
    candidate_count: int = 1024,
    filter_keep: int = 64,
    batch_size: int = 64,
) -> PipelineLatencyEstimate:
    """Predict the pipeline's latency at production scale (no allocation).

    The filtering stage scores every candidate with the light model; the
    ranking stage scores the survivors with the heavy model.
    """
    if candidate_count < filter_keep:
        raise ValueError("candidate_count must be at least filter_keep")
    timing = TimingModel(server)

    def stage_seconds(config: ModelConfig, items: int) -> float:
        full, rem = divmod(items, batch_size)
        seconds = full * timing.model_latency(config, batch_size).total_seconds
        if rem:
            seconds += timing.model_latency(config, rem).total_seconds
        return seconds

    return PipelineLatencyEstimate(
        server_name=server.name,
        filter_seconds=stage_seconds(filter_config, candidate_count),
        rank_seconds=stage_seconds(rank_config, filter_keep),
    )
