"""Fault injection and graceful degradation for the serving stack.

The paper's production takeaways (Section VI, Figure 11) come from a fleet
where co-located replicas contend, jitter, and occasionally stall; tail
latency is shaped as much by those faults — and by the front-end policies
that absorb them — as by micro-architecture. This module adds both sides:

* **Injectors** — a :class:`FaultSchedule` composes replica crashes
  (:class:`ReplicaCrash`), interval slowdowns (:class:`Straggler`) and
  effective-DRAM-bandwidth dips (:class:`BandwidthFault`), all placed on
  the simulator's event clock. :func:`fault_storm` draws a random storm
  from a dedicated ``np.random.default_rng(seed)`` stream so every run is
  reproducible.
* **Resilience policies** — :class:`ResiliencePolicy` configures
  per-request timeouts with bounded exponential-backoff retries, hedged
  requests (duplicate to a second replica after a fixed delay, first
  response wins — "The Tail at Scale" tail-cutting), and
  health-check-driven ejection/readmission of replicas.
* **Graceful degradation** — :class:`DegradationPolicy` falls back to a
  cheaper preset or truncates sparse lookups per table when the fleet is
  overloaded or partially down; the quality cost of serving the fallback
  is surfaced via :func:`degraded_quality`
  (:mod:`repro.serving.ranking_quality`).
* **Accounting** — :class:`~repro.serving.metrics.ResilienceStats`
  (availability, goodput, retry/hedge counts, time in degraded mode) via
  :meth:`FaultyServingResult.stats`.

:class:`ResilientRouter` runs the fleet-level discrete-event simulation:
M replicas of one model, Poisson query arrivals, faults from a schedule,
and the configured policies. :class:`~repro.serving.simulator.ServingSimulator`
accepts the same :class:`FaultSchedule` for the single-machine co-location
view.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..analysis.distributions import LatencySummary, summarize
from ..config.model_config import ModelConfig
from ..core.operators.base import OP_SLS
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .metrics import SLA, ResilienceStats, goodput_qps

if TYPE_CHECKING:
    from .multimodel import MultiModelPool
from .ranking_quality import pipeline_quality
from .router import SERVICE_NOISE_SIGMA, pick_machine

# ``overload`` never imports this module at import time (its one faults
# dependency is deferred into a method body), so this edge is acyclic.
from .overload import (
    SHED_CODEL,
    SHED_DEADLINE,
    SHED_OLDEST,
    SHED_QUEUE_FULL,
    BrownoutController,
    CircuitBreaker,
    OverloadConfig,
    OverloadStats,
)

# --------------------------------------------------------------- injectors


@dataclass(frozen=True)
class ReplicaCrash:
    """A replica process dies at ``at_s`` and restarts ``downtime_s`` later.

    In-flight work on the replica is lost; queued work fails fast (the
    connection is refused), which is what makes retries matter.
    """

    replica_id: int
    at_s: float
    downtime_s: float

    def __post_init__(self) -> None:
        if self.replica_id < 0:
            raise ValueError("replica_id must be non-negative")
        if self.at_s < 0:
            raise ValueError("crash time must be non-negative")
        if self.downtime_s <= 0:
            raise ValueError("downtime must be positive")


@dataclass(frozen=True)
class Straggler:
    """A replica serves ``slowdown`` x slower during an interval.

    Models a co-located batch job, a thermal throttle, or a GC pause train
    — the replica stays up but its service times stretch.
    """

    replica_id: int
    start_s: float
    duration_s: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.replica_id < 0:
            raise ValueError("replica_id must be non-negative")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("straggler interval must be non-negative/positive")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (use 1 for no effect)")


@dataclass(frozen=True)
class BandwidthFault:
    """Effective DRAM bandwidth drops to ``bandwidth_fraction`` of nominal.

    A noisy neighbour saturating the memory controller slows only the
    memory-bound share of an inference (the SLS time, per the paper's
    characterization); the injected slowdown is Amdahl-scaled by that share.
    ``replica_id`` of ``None`` hits every replica (a machine-wide or
    rack-wide neighbour).
    """

    start_s: float
    duration_s: float
    bandwidth_fraction: float
    replica_id: int | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("fault interval must be non-negative/positive")
        if not 0.0 < self.bandwidth_fraction <= 1.0:
            raise ValueError("bandwidth_fraction must be in (0, 1]")


class FaultSchedule:
    """A composed, clock-driven set of fault injections.

    The schedule is immutable and purely declarative: simulators query it
    (``is_down`` / ``service_multiplier`` / ``transition_events``) against
    their own event clock, so the same schedule replayed against the same
    seed yields byte-identical runs.
    """

    def __init__(
        self,
        crashes: tuple[ReplicaCrash, ...] | list[ReplicaCrash] = (),
        stragglers: tuple[Straggler, ...] | list[Straggler] = (),
        bandwidth_faults: tuple[BandwidthFault, ...] | list[BandwidthFault] = (),
    ) -> None:
        self.crashes = tuple(crashes)
        self.stragglers = tuple(stragglers)
        self.bandwidth_faults = tuple(bandwidth_faults)

    @classmethod
    def zero(cls) -> "FaultSchedule":
        """The empty schedule (injects nothing)."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when the schedule injects nothing."""
        return not (self.crashes or self.stragglers or self.bandwidth_faults)

    # ------------------------------------------------------------- queries

    def down_intervals(self, replica_id: int) -> list[tuple[float, float]]:
        """Merged ``[start, end)`` downtime intervals for one replica."""
        raw = sorted(
            (c.at_s, c.at_s + c.downtime_s)
            for c in self.crashes
            if c.replica_id == replica_id
        )
        merged: list[tuple[float, float]] = []
        for start_s, end_s in raw:
            if merged and start_s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end_s))
            else:
                merged.append((start_s, end_s))
        return merged

    def is_down(self, replica_id: int, t_s: float) -> bool:
        """True when the replica is crashed at time ``t_s``."""
        return any(
            start_s <= t_s < end_s
            for start_s, end_s in self.down_intervals(replica_id)
        )

    def service_multiplier(
        self, replica_id: int, t_s: float, memory_fraction: float = 1.0
    ) -> float:
        """Service-time multiplier on a replica at time ``t_s``.

        Stragglers multiply the whole service time; bandwidth faults
        stretch only the ``memory_fraction`` share (Amdahl's law on the
        memory-bound portion of the inference).
        """
        if not 0.0 <= memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in [0, 1]")
        multiplier = 1.0
        for s in self.stragglers:
            if s.replica_id == replica_id and s.start_s <= t_s < s.start_s + s.duration_s:
                multiplier *= s.slowdown
        for b in self.bandwidth_faults:
            if b.replica_id is not None and b.replica_id != replica_id:
                continue
            if b.start_s <= t_s < b.start_s + b.duration_s:
                multiplier *= 1.0 + memory_fraction * (1.0 / b.bandwidth_fraction - 1.0)
        return multiplier

    def transition_events(self, num_replicas: int) -> list[tuple[float, int, bool]]:
        """All ``(time_s, replica_id, goes_down)`` crash/restart edges."""
        events: list[tuple[float, int, bool]] = []
        for replica_id in range(num_replicas):
            for start_s, end_s in self.down_intervals(replica_id):
                events.append((start_s, replica_id, True))
                events.append((end_s, replica_id, False))
        events.sort()
        return events

    def downtime_s(self, replica_id: int, horizon_s: float) -> float:
        """Total seconds the replica is down within ``[0, horizon_s)``."""
        return sum(
            max(0.0, min(end_s, horizon_s) - min(start_s, horizon_s))
            for start_s, end_s in self.down_intervals(replica_id)
        )

    def healthy_fraction(self, t_s: float, num_replicas: int) -> float:
        """Fraction of replicas up at time ``t_s`` (autoscaler feed)."""
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        up = sum(0 if self.is_down(r, t_s) else 1 for r in range(num_replicas))
        return up / num_replicas


def fault_storm(
    num_replicas: int,
    duration_s: float,
    seed: int,
    crash_count: int = 2,
    crash_downtime_frac: tuple[float, float] = (0.05, 0.2),
    straggler_count: int = 2,
    straggler_slowdown: tuple[float, float] = (4.0, 10.0),
    straggler_duration_frac: tuple[float, float] = (0.1, 0.4),
    bandwidth_dip_count: int = 1,
    bandwidth_fraction: tuple[float, float] = (0.3, 0.6),
    bandwidth_duration_frac: tuple[float, float] = (0.1, 0.3),
    topology=None,
    correlation: float = 0.0,
    correlation_kind: str = "rack",
) -> FaultSchedule:
    """Draw a random fault storm from a dedicated seeded stream.

    Interval lengths are drawn as *fractions* of ``duration_s`` (the
    ``*_frac`` ranges) so the same storm shape scales with the simulated
    horizon; counts are exact.

    With a :class:`~repro.serving.domains.FleetTopology` and a positive
    ``correlation``, each drawn crash/straggler *escalates* with that
    probability to every replica sharing the victim's ``correlation_kind``
    domain (rack power events instead of lone machine deaths). The base
    draws happen first and are untouched, so ``correlation=0.0`` output is
    byte-identical to the independent storm regardless of ``topology``.
    """
    if num_replicas < 1:
        raise ValueError("need at least one replica")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    if topology is not None and topology.num_replicas != num_replicas:
        raise ValueError(
            f"topology covers {topology.num_replicas} replicas, "
            f"storm covers {num_replicas}"
        )
    rng = np.random.default_rng(seed)

    def interval_s(frac_range: tuple[float, float]) -> float:
        return duration_s * float(rng.uniform(*frac_range))

    crashes = tuple(
        ReplicaCrash(
            replica_id=int(rng.integers(num_replicas)),
            at_s=float(rng.uniform(0.0, 0.8 * duration_s)),
            downtime_s=interval_s(crash_downtime_frac),
        )
        for _ in range(crash_count)
    )
    stragglers = tuple(
        Straggler(
            replica_id=int(rng.integers(num_replicas)),
            start_s=float(rng.uniform(0.0, 0.7 * duration_s)),
            duration_s=interval_s(straggler_duration_frac),
            slowdown=float(rng.uniform(*straggler_slowdown)),
        )
        for _ in range(straggler_count)
    )
    bandwidth_faults = tuple(
        BandwidthFault(
            start_s=float(rng.uniform(0.0, 0.7 * duration_s)),
            duration_s=interval_s(bandwidth_duration_frac),
            bandwidth_fraction=float(rng.uniform(*bandwidth_fraction)),
            replica_id=None,
        )
        for _ in range(bandwidth_dip_count)
    )
    if topology is not None and correlation > 0.0:
        # Escalation draws come after every base draw, preserving the
        # base stream; each escalated event clones its interval onto the
        # whole domain (bandwidth dips are already fleet-wide).
        escalated_crashes: list[ReplicaCrash] = []
        for crash in crashes:
            if float(rng.uniform()) < correlation:
                domain_id = topology.domain_of(crash.replica_id, correlation_kind)
                escalated_crashes.extend(
                    replace(crash, replica_id=r)
                    for r in topology.replicas_in(correlation_kind, domain_id)
                )
            else:
                escalated_crashes.append(crash)
        escalated_stragglers: list[Straggler] = []
        for straggler in stragglers:
            if float(rng.uniform()) < correlation:
                domain_id = topology.domain_of(
                    straggler.replica_id, correlation_kind
                )
                escalated_stragglers.extend(
                    replace(straggler, replica_id=r)
                    for r in topology.replicas_in(correlation_kind, domain_id)
                )
            else:
                escalated_stragglers.append(straggler)
        crashes = tuple(escalated_crashes)
        stragglers = tuple(escalated_stragglers)
    return FaultSchedule(crashes, stragglers, bandwidth_faults)


# ---------------------------------------------------------------- policies


@dataclass(frozen=True)
class ResiliencePolicy:
    """Front-end resilience knobs.

    Attributes:
        timeout_s: per-attempt client timeout; ``None`` waits forever.
        max_retries: attempts re-issued after a timeout or fail-fast.
        backoff_base_s: first retry delay; doubles per retry (exponential).
        hedge_delay_s: issue a duplicate to a second replica this long
            after the primary attempt; ``None`` disables hedging. Choose
            near the no-fault p9x latency so hedges stay rare.
        health_check_interval_s: router probe period for ejecting crashed
            replicas and readmitting restarted ones; ``None`` gives the
            router instantaneous health knowledge. A routed request that
            hits a down replica fails fast and ejects it immediately
            (passive health), whichever mode is active.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    backoff_base_s: float = 0.001
    hedge_delay_s: float | None = None
    health_check_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge delay must be positive")
        if self.health_check_interval_s is not None and self.health_check_interval_s <= 0:
            raise ValueError("health-check interval must be positive")

    @classmethod
    def none(cls) -> "ResiliencePolicy":
        """No timeouts, no retries, no hedging (the pre-fault stack)."""
        return cls()

    def backoff_s(self, retry_index: int) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        if retry_index < 0:
            raise ValueError("retry index must be non-negative")
        return self.backoff_base_s * (2.0**retry_index)


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful degradation under overload or partial failure.

    When fewer than ``min_healthy_fraction`` of replicas are admitted, or
    the mean queue depth across admitted replicas reaches
    ``queue_depth_trigger``, new requests are served in degraded mode:
    with ``fallback_config`` if given, else with the primary config's
    sparse lookups truncated to ``max_lookups_per_table``.

    Attributes:
        fallback_config: cheaper preset served under pressure (e.g. RMC1
            instead of RMC3); ``None`` uses lookup truncation instead.
        max_lookups_per_table: cap on per-table sparse lookups in degraded
            mode (ignored when ``fallback_config`` is set).
        queue_depth_trigger: mean admitted-replica queue depth that flips
            degraded mode on.
        min_healthy_fraction: admitted-replica fraction below which
            degraded mode engages regardless of queues.
    """

    fallback_config: ModelConfig | None = None
    max_lookups_per_table: int | None = None
    queue_depth_trigger: float = 4.0
    min_healthy_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.fallback_config is None and self.max_lookups_per_table is None:
            raise ValueError(
                "degradation needs a fallback_config or max_lookups_per_table"
            )
        if self.max_lookups_per_table is not None and self.max_lookups_per_table < 1:
            raise ValueError("max_lookups_per_table must be positive")
        if self.queue_depth_trigger <= 0:
            raise ValueError("queue_depth_trigger must be positive")
        if not 0.0 < self.min_healthy_fraction <= 1.0:
            raise ValueError("min_healthy_fraction must be in (0, 1]")

    def degraded_config(self, primary: ModelConfig) -> ModelConfig:
        """The model actually served in degraded mode."""
        if self.fallback_config is not None:
            return self.fallback_config
        assert self.max_lookups_per_table is not None
        return truncate_lookups(primary, self.max_lookups_per_table)


def truncate_lookups(config: ModelConfig, max_lookups_per_table: int) -> ModelConfig:
    """A copy of ``config`` with per-table sparse lookups capped.

    Pooling fewer sparse IDs cuts SLS time (the memory-bound share)
    roughly linearly at a bounded quality cost — the classic
    recommendation degraded mode.
    """
    if max_lookups_per_table < 1:
        raise ValueError("max_lookups_per_table must be positive")
    tables = tuple(
        replace(t, lookups_per_sample=min(t.lookups_per_sample, max_lookups_per_table))
        for t in config.embedding_tables
    )
    return ModelConfig(
        name=f"{config.name}-trunc{max_lookups_per_table}",
        model_class=config.model_class,
        dense_features=config.dense_features,
        bottom_mlp=config.bottom_mlp,
        embedding_tables=tables,
        top_mlp=config.top_mlp,
        dtype=config.dtype,
        interaction=config.interaction,
    )


def degraded_quality(
    primary: ModelConfig,
    degraded: ModelConfig,
    num_candidates: int = 200,
    k: int = 10,
    seed: int = 0,
) -> dict[str, float]:
    """Ranking-quality cost of serving ``degraded`` instead of ``primary``.

    A synthetic candidate set is scored by the primary model (ground
    truth); the degraded model's scores are the truth plus noise whose
    scale grows with the fraction of per-sample work it drops (FLOPs and
    gathered embedding bytes both proxy for capacity). Returns the
    recall@k / NDCG@k of the degraded selection
    (:func:`repro.serving.ranking_quality.pipeline_quality`).
    """
    if num_candidates < k:
        raise ValueError("need at least k candidates")
    flops_kept = degraded.flops_per_sample() / primary.flops_per_sample()
    bytes_kept = degraded.bytes_read_per_sample() / primary.bytes_read_per_sample()
    capacity_kept = min(1.0, 0.5 * (flops_kept + bytes_kept))
    noise_scale = 1.0 - capacity_kept
    rng = np.random.default_rng(seed)
    true_scores = rng.normal(0.0, 1.0, size=num_candidates)
    noisy_scores = true_scores + noise_scale * rng.normal(0.0, 1.0, size=num_candidates)
    selected = list(np.argsort(noisy_scores)[::-1][:k])
    return pipeline_quality(selected, true_scores, k)


# --------------------------------------------------------------- simulator

# Attempt states.
_QUEUED, _RUNNING, _CANCELLED, _DONE = range(4)

# Event kinds (heap entries are ``(t_s, seq, kind, a, b)``).
_EV_ARRIVAL, _EV_COMPLETE, _EV_TIMEOUT, _EV_HEDGE, _EV_FAULT, _EV_HEALTH = range(6)


class _Request:
    """Mutable per-request state (client side)."""

    __slots__ = (
        "arrival_s", "done", "failed", "degraded", "tier", "latency_s",
        "retries_used", "hedged", "live_attempts",
    )

    def __init__(self, arrival_s: float) -> None:
        self.arrival_s = arrival_s
        self.done = False
        self.failed = False
        self.degraded = False
        self.tier = 0
        self.latency_s = 0.0
        self.retries_used = 0
        self.hedged = False
        self.live_attempts = 0


class _Attempt:
    """One routed attempt of a request (server side)."""

    __slots__ = ("request_id", "machine", "state", "enqueued_s")

    def __init__(self, request_id: int, machine: int, enqueued_s: float) -> None:
        self.request_id = request_id
        self.machine = machine
        self.state = _QUEUED
        self.enqueued_s = enqueued_s


@dataclass
class FaultyServingResult:
    """Outcome of one :class:`ResilientRouter` run."""

    policy: ResiliencePolicy
    num_machines: int
    offered_qps: float
    duration_s: float
    sla: SLA
    latencies_s: np.ndarray
    offered: int
    failed: int
    retries: int
    hedges: int
    wasted_attempts: int
    fail_fasts: int
    ejections: int
    degraded_completions: int
    time_in_degraded_s: float
    quality: dict[str, float] | None = None
    #: Overload-protection accounting; ``None`` when ``overload`` was off.
    overload: "OverloadStats | None" = None
    #: Per-brownout-tier ranking quality (tiers 1..N); ``None`` without
    #: a brownout policy.
    brownout_quality: tuple[dict[str, float], ...] | None = None

    @property
    def completed(self) -> int:
        """Requests that received a response."""
        return int(self.latencies_s.size)

    @property
    def unresolved(self) -> int:
        """Offered requests still in flight at the horizon."""
        return self.offered - self.completed - self.failed

    def summary(self) -> LatencySummary:
        """Percentile summary of completed-request latencies."""
        return summarize(self.latencies_s)

    def throughput_qps(self) -> float:
        """Completed requests per second (regardless of the SLA)."""
        return self.completed / self.duration_s

    def goodput_qps(self) -> float:
        """In-SLO completions per second."""
        return goodput_qps(self.latencies_s, self.sla, self.duration_s)

    def availability(self) -> float:
        """Fraction of offered requests that completed."""
        if self.offered == 0:
            return 1.0
        return self.completed / self.offered

    def stats(self) -> ResilienceStats:
        """The accounting record for this run."""
        return ResilienceStats(
            offered=self.offered,
            completed=self.completed,
            failed=self.failed,
            retries=self.retries,
            hedges=self.hedges,
            wasted_attempts=self.wasted_attempts,
            degraded_completions=self.degraded_completions,
            time_in_degraded_s=self.time_in_degraded_s,
            duration_s=self.duration_s,
            throughput_qps=self.throughput_qps(),
            goodput_qps=self.goodput_qps(),
        )


class ResilientRouter:
    """Fleet-level DES with fault injection and resilience policies.

    M replicas of one model behind a router; Poisson query arrivals;
    faults from a :class:`FaultSchedule`; timeouts, retries, hedging,
    health checks and graceful degradation from the policies. Two runs
    with identical arguments are byte-identical.

    Args:
        server: machine generation (all replicas identical).
        config: the model each replica serves.
        batch_size: items per query.
        num_machines: replica count.
        policy: resilience knobs (default: none — the pre-fault stack).
        degradation: graceful-degradation knobs (default: never degrade).
        overload: overload-protection bundle
            (:class:`~repro.serving.overload.OverloadConfig`): bounded
            admission with shedding, per-replica circuit breakers that
            retries and hedges respect, and SLO-aware brownout through
            quality tiers. ``None`` (the default) reproduces the
            unprotected run byte for byte.
        routing: load-balancing policy (:data:`repro.serving.router.POLICIES`).
        seed: RNG seed for arrivals and service noise. The fault stream is
            seeded separately inside :func:`fault_storm`, so policy
            comparisons can share one storm.
        tracer: optional :class:`~repro.obs.tracer.Tracer`. Records
            ``serving.router.request`` spans on a client track with
            ``serving.router.attempt`` children on per-machine tracks, plus
            instants for retries, hedges, timeouts, fail-fasts, crashes and
            restarts — all on the DES clock. The default nil tracer records
            nothing and tracing never perturbs the run.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            filled at the end of every :meth:`run` (counters, latency
            histogram, degraded-time gauge).
        metrics_labels: labels attached to every series this router
            records (e.g. ``{"policy": "retry2"}`` to compare policies in
            one registry).
        engine: DES engine (:data:`repro.serving.des.ENGINES`).
            ``"reference"`` runs the per-event loop below (the executable
            spec); ``"vectorized"`` runs the incremental-state engine in
            :mod:`repro.serving.des`, byte-identical on latencies, stats,
            spans and RNG draws — the difference is wall clock, which at
            ~1000 machines is one to two orders of magnitude.
    """

    def __init__(
        self,
        server: ServerSpec,
        config: ModelConfig,
        batch_size: int,
        num_machines: int,
        policy: ResiliencePolicy | None = None,
        degradation: DegradationPolicy | None = None,
        overload: "OverloadConfig | None" = None,
        routing: str = "jsq2",
        seed: int = 0,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        metrics_labels: dict[str, str] | None = None,
        engine: str = "reference",
        pool: "MultiModelPool | None" = None,
    ) -> None:
        from .des import validate_engine

        if num_machines < 1:
            raise ValueError("need at least one machine")
        if pool is not None and config.name not in pool.model_names:
            raise ValueError(
                f"model {config.name!r} is not registered in the "
                f"multi-model pool {pool.model_names}"
            )
        #: Optional :class:`~repro.serving.multimodel.MultiModelPool` this
        #: single-model run belongs to. The pool is a capacity contract —
        #: construction already proved the model fits a replica resident —
        #: plus an observability hook; it never perturbs the simulation
        #: (a run with a pool is record-for-record identical to one
        #: without). Cross-model dispatch lives in
        #: :class:`~repro.serving.multimodel.MultiModelRouter`.
        self.pool = pool
        self.engine = validate_engine(engine)
        self.server = server
        self.config = config
        self.batch_size = batch_size
        self.num_machines = num_machines
        self.policy = policy or ResiliencePolicy.none()
        self.degradation = degradation
        self.overload = overload
        self.routing = routing
        self.seed = seed
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.metrics_labels = dict(metrics_labels or {})
        timing = TimingModel(server)
        base = timing.model_latency(config, batch_size)
        self._base_service_s = base.total_seconds
        #: Memory-bound share of an inference — the part a bandwidth fault
        #: stretches (SLS dominates DRAM traffic in the paper's profile).
        self._memory_fraction = base.fraction_by_op_type().get(OP_SLS, 0.0)
        if degradation is not None:
            degraded = degradation.degraded_config(config)
            self._degraded_service_s = timing.model_latency(
                degraded, batch_size
            ).total_seconds
            self._quality = degraded_quality(config, degraded, seed=seed)
        else:
            self._degraded_service_s = self._base_service_s
            self._quality = None
        # Brownout tiers: per-tier service time and quality cost, priced
        # once up front. Index 0 is full quality.
        if overload is not None and overload.brownout is not None:
            tier_configs = [
                tier.degraded_config(config)
                for tier in overload.brownout.tiers
            ]
            self._tier_service_s = [self._base_service_s] + [
                timing.model_latency(c, batch_size).total_seconds
                for c in tier_configs
            ]
            self._brownout_quality = tuple(
                degraded_quality(config, c, seed=seed) for c in tier_configs
            )
        else:
            self._tier_service_s = [self._base_service_s]
            self._brownout_quality = None

    def max_stable_qps(self) -> float:
        """Arrival rate at 100% fleet utilization (no faults)."""
        return self.num_machines / self._base_service_s

    def _record_metrics(
        self,
        n_offered: int,
        completed: int,
        failed: int,
        retries: int,
        hedges: int,
        wasted_attempts: int,
        fail_fasts: int,
        ejections: int,
        degraded_completions: int,
        time_in_degraded_s: float,
        latencies: list[float],
        overload_stats: "OverloadStats | None" = None,
    ) -> None:
        """Publish one run's accounting into the attached registry."""
        registry = self.metrics
        assert registry is not None
        labels = self.metrics_labels
        if overload_stats is not None:
            registry.counter("serving.overload.offered", **labels).inc(
                overload_stats.offered
            )
            registry.counter("serving.overload.admitted", **labels).inc(
                overload_stats.admitted
            )
            for reason in sorted(overload_stats.shed_by_reason):
                registry.counter(
                    "serving.overload.shed", reason=reason, **labels
                ).inc(overload_stats.shed_by_reason[reason])
            registry.counter("serving.breaker.opens", **labels).inc(
                overload_stats.breaker_opens
            )
            registry.counter("serving.breaker.rejections", **labels).inc(
                overload_stats.breaker_rejections
            )
            registry.counter("serving.brownout.switches", **labels).inc(
                overload_stats.brownout_switches
            )
            registry.gauge("serving.brownout.max_tier", **labels).set(
                overload_stats.max_brownout_tier
            )
            registry.gauge("serving.queue.max_depth", **labels).set(
                overload_stats.max_queue_depth
            )
            registry.gauge("serving.overload.time_degraded_s", **labels).set(
                overload_stats.time_degraded_s
            )
        counts = {
            "serving.router.offered": n_offered,
            "serving.router.completed": completed,
            "serving.router.failed": failed,
            "serving.router.retries": retries,
            "serving.router.hedges": hedges,
            "serving.router.wasted_attempts": wasted_attempts,
            "serving.router.fail_fasts": fail_fasts,
            "serving.router.ejections": ejections,
            "serving.router.degraded_completions": degraded_completions,
        }
        for name, value in counts.items():
            registry.counter(name, **labels).inc(value)
        registry.gauge("serving.router.time_in_degraded_s", **labels).set(
            time_in_degraded_s
        )
        histogram = registry.histogram("serving.router.latency_s", **labels)
        for latency_s in latencies:
            histogram.observe(latency_s)

    # ------------------------------------------------------------------ run

    def run(
        self,
        offered_qps: float,
        duration_s: float = 1.0,
        faults: FaultSchedule | None = None,
        sla: SLA | None = None,
        arrival_times_s: Sequence[float] | None = None,
    ) -> FaultyServingResult:
        """Simulate ``duration_s`` of Poisson arrivals under ``faults``.

        ``arrival_times_s`` replaces the internal Poisson process with an
        explicit arrival trace (e.g. a flash crowd from
        :class:`~repro.serving.loadgen.SpikeLoadGenerator`); every time
        must lie in ``[0, duration_s)``. ``offered_qps`` is then only the
        nominal rate recorded in the result.

        Dispatches on ``engine=``: the reference loop below is the
        executable spec; the vectorized engine reproduces it byte for
        byte (``tests/test_des_equivalence.py``).
        """
        if self.engine == "vectorized":
            from .des import run_router_vectorized

            result = run_router_vectorized(
                self, offered_qps, duration_s, faults, sla, arrival_times_s
            )
        else:
            result = self._run_reference(
                offered_qps, duration_s, faults, sla, arrival_times_s
            )
        if self.pool is not None and self.metrics is not None:
            self.metrics.gauge(
                "serving.multimodel.capacity_slots",
                model=self.config.name,
                **self.metrics_labels,
            ).set(float(self.pool.total_slots))
        return result

    def _run_reference(
        self,
        offered_qps: float,
        duration_s: float = 1.0,
        faults: FaultSchedule | None = None,
        sla: SLA | None = None,
        arrival_times_s: Sequence[float] | None = None,
    ) -> FaultyServingResult:
        """The per-event reference loop (the executable spec)."""
        if offered_qps <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        faults = faults or FaultSchedule.zero()
        sla = sla or SLA(deadline_s=10.0 * self._base_service_s, percentile=0.99)
        policy = self.policy
        rng = np.random.default_rng(self.seed)

        # Overload protection: admission bound + CoDel per machine, one
        # circuit breaker per machine, one brownout controller. All are
        # None when unconfigured, and every branch below that touches them
        # is skipped — the unprotected run is byte-identical.
        overload = self.overload
        admission = overload.admission if overload is not None else None
        expected_service_s = self._base_service_s
        codels = (
            [admission.make_codel() for _ in range(self.num_machines)]
            if admission is not None
            else None
        )
        breakers = (
            [CircuitBreaker(overload.breaker) for _ in range(self.num_machines)]
            if overload is not None and overload.breaker is not None
            else None
        )
        brownout = (
            BrownoutController(overload.brownout)
            if overload is not None and overload.brownout is not None
            else None
        )
        ovl_stats = OverloadStats() if overload is not None else None
        if ovl_stats is not None and brownout is not None:
            ovl_stats.completions_by_tier = [0] * overload.brownout.num_tiers

        requests: list[_Request] = []
        attempts: list[_Attempt] = []
        up = [True] * self.num_machines
        admitted = [True] * self.num_machines
        running: list[int | None] = [None] * self.num_machines
        queues: list[list[int]] = [[] for _ in range(self.num_machines)]
        rr_state = [0]

        retries = hedges = wasted_attempts = fail_fasts = ejections = 0
        failed = 0
        degraded_completions = 0
        time_in_degraded_s = 0.0
        degraded_on = False
        degraded_since_s = 0.0
        latencies: list[float] = []

        events: list[tuple[float, int, int, int, int]] = []
        seq = 0

        # Observability: request spans live on a dedicated client track,
        # attempt spans on per-machine tracks. Everything below is guarded
        # by ``tracer.enabled`` and touches neither the RNG nor the event
        # queue, so the nil tracer reproduces the historical run exactly.
        tracer = self.tracer
        client_track = self.num_machines
        request_span: dict[int, int] = {}
        attempt_span: dict[int, int] = {}
        if tracer.enabled:
            tracer.set_track_name(client_track, "client")
            for m in range(self.num_machines):
                tracer.set_track_name(m, f"machine {m}")

        def push(t_s: float, kind: int, a: int = 0, b: int = 0) -> None:
            nonlocal seq
            heapq.heappush(events, (t_s, seq, kind, a, b))
            seq += 1

        # Pre-materialize arrivals so the arrival stream is independent of
        # policy decisions (one storm, comparable policies).
        n_offered = 0
        if arrival_times_s is None:
            t_s = 0.0
            while True:
                t_s += float(rng.exponential(1.0 / offered_qps))
                if t_s >= duration_s:
                    break
                push(t_s, _EV_ARRIVAL, n_offered)
                requests.append(_Request(arrival_s=t_s))
                n_offered += 1
        else:
            for raw_t_s in arrival_times_s:
                t_s = float(raw_t_s)
                if not 0.0 <= t_s < duration_s:
                    raise ValueError(
                        "arrival times must lie in [0, duration_s)"
                    )
                push(t_s, _EV_ARRIVAL, n_offered)
                requests.append(_Request(arrival_s=t_s))
                n_offered += 1

        for edge_t_s, replica_id, goes_down in faults.transition_events(
            self.num_machines
        ):
            push(edge_t_s, _EV_FAULT, replica_id, int(goes_down))
        if policy.health_check_interval_s is not None:
            probe_t_s = policy.health_check_interval_s
            horizon_s = duration_s + 10.0 * self._base_service_s
            while probe_t_s < horizon_s:
                push(probe_t_s, _EV_HEALTH)
                probe_t_s += policy.health_check_interval_s

        # --------------------------------------------------------- helpers

        def queue_len(machine: int) -> int:
            return len(queues[machine]) + (running[machine] is not None)

        def eject(machine: int) -> None:
            nonlocal ejections
            if admitted[machine]:
                admitted[machine] = False
                ejections += 1

        def shed(reason: str, machine: int, now_s: float) -> None:
            """Account one shed event (admission/CoDel drop)."""
            assert ovl_stats is not None
            ovl_stats.count_shed(reason)
            if tracer.enabled:
                tracer.instant(
                    "serving.overload.shed", now_s, track=machine, reason=reason
                )

        def breaker_note(machine: int, before: str, now_s: float) -> None:
            """Emit an instant when a breaker changed state."""
            assert breakers is not None
            after = breakers[machine].state
            if tracer.enabled and after != before:
                tracer.instant(f"serving.breaker.{after}", now_s, track=machine)

        def breaker_failure(machine: int, now_s: float) -> None:
            if breakers is None:
                return
            before = breakers[machine].state
            breakers[machine].record_failure(now_s)
            breaker_note(machine, before, now_s)

        def breaker_success(machine: int, now_s: float) -> None:
            if breakers is None:
                return
            before = breakers[machine].state
            breakers[machine].record_success(now_s)
            breaker_note(machine, before, now_s)

        def waiting_depth(machine: int) -> int:
            """Live queued attempts (stale entries excluded)."""
            return sum(
                1 for aid in queues[machine] if attempts[aid].state == _QUEUED
            )

        def degraded_now(now_s: float) -> bool:
            """Evaluate + account the degraded-mode state at ``now_s``."""
            nonlocal degraded_on, degraded_since_s, time_in_degraded_s
            if self.degradation is None:
                return False
            candidates = [m for m in range(self.num_machines) if admitted[m]]
            healthy_frac = len(candidates) / self.num_machines
            mean_depth = (
                sum(queue_len(m) for m in candidates) / len(candidates)
                if candidates
                else float("inf")
            )
            on = (
                healthy_frac < self.degradation.min_healthy_fraction
                or mean_depth >= self.degradation.queue_depth_trigger
            )
            if on and not degraded_on:
                degraded_since_s = now_s
            elif not on and degraded_on:
                time_in_degraded_s += now_s - degraded_since_s
            degraded_on = on
            return on

        def start_next(machine: int, now_s: float) -> None:
            """Dispatch the machine's queue head, skipping dead attempts."""
            if running[machine] is not None or not up[machine]:
                return
            while queues[machine]:
                attempt_id = queues[machine].pop(0)
                attempt = attempts[attempt_id]
                request = requests[attempt.request_id]
                if attempt.state != _QUEUED or request.done or request.failed:
                    if attempt.state == _QUEUED:
                        attempt.state = _CANCELLED
                        request.live_attempts -= 1
                        if tracer.enabled and attempt_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(attempt_id),
                                now_s,
                                outcome="cancelled",
                            )
                    continue
                if codels is not None and codels[machine] is not None:
                    sojourn_s = now_s - attempt.enqueued_s
                    if codels[machine].on_dequeue(sojourn_s, now_s):
                        # Standing queue: CoDel sheds the head-of-line
                        # request to drain delay, not just length.
                        attempt.state = _CANCELLED
                        request.live_attempts -= 1
                        shed(SHED_CODEL, machine, now_s)
                        if tracer.enabled and attempt_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(attempt_id),
                                now_s,
                                outcome="shed",
                            )
                        attempt_failed(attempt.request_id, now_s)
                        continue
                attempt.state = _RUNNING
                running[machine] = attempt_id
                base_s = (
                    self._degraded_service_s
                    if request.degraded
                    else self._tier_service_s[request.tier]
                )
                multiplier = faults.service_multiplier(
                    machine, now_s, self._memory_fraction
                )
                sigma = SERVICE_NOISE_SIGMA
                service_s = (
                    base_s
                    * multiplier
                    * float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
                )
                push(now_s + service_s, _EV_COMPLETE, attempt_id, machine)
                return

        def route_attempt(request_id: int, now_s: float) -> None:
            """Route one attempt; fail fast when no healthy target exists."""
            nonlocal fail_fasts
            request = requests[request_id]
            if request.done or request.failed:
                return
            if ovl_stats is not None:
                ovl_stats.offered += 1
            candidates = [m for m in range(self.num_machines) if admitted[m]]
            if breakers is not None and candidates:
                # Retries and hedges route through here too, so every
                # attempt respects open breakers.
                closed = [m for m in candidates if breakers[m].allows(now_s)]
                if not closed:
                    ovl_stats.breaker_rejections += 1
                    attempt_failed(request_id, now_s)
                    return
                candidates = closed
            if not candidates:
                attempt_failed(request_id, now_s)
                return
            depths = [queue_len(m) for m in range(self.num_machines)]
            machine = pick_machine(
                self.routing, rng, depths, rr_state, candidates=candidates
            )
            if not up[machine]:
                # Connection refused: passive health detection.
                fail_fasts += 1
                eject(machine)
                breaker_failure(machine, now_s)
                if tracer.enabled:
                    tracer.instant(
                        "serving.router.failfast", now_s, track=machine
                    )
                attempt_failed(request_id, now_s)
                return
            if admission is not None:
                waiting = waiting_depth(machine)
                if admission.shed_policy == "deadline_aware":
                    # Shed arrivals that cannot meet the deadline given
                    # the queue already ahead of them: the work is dead
                    # on arrival, serving it only delays live requests.
                    wait_s = (
                        waiting + (running[machine] is not None)
                    ) * expected_service_s
                    projected_s = (
                        now_s + wait_s + expected_service_s - request.arrival_s
                    )
                    if projected_s > admission.deadline_s:
                        shed(SHED_DEADLINE, machine, now_s)
                        attempt_failed(request_id, now_s)
                        return
                if waiting >= admission.queue_capacity:
                    if admission.shed_policy == "reject_oldest":
                        victim_id = next(
                            (
                                aid
                                for aid in queues[machine]
                                if attempts[aid].state == _QUEUED
                            ),
                            None,
                        )
                        if victim_id is not None:
                            queues[machine].remove(victim_id)
                            victim = attempts[victim_id]
                            victim.state = _CANCELLED
                            requests[victim.request_id].live_attempts -= 1
                            shed(SHED_OLDEST, machine, now_s)
                            if tracer.enabled and victim_id in attempt_span:
                                tracer.end(
                                    attempt_span.pop(victim_id),
                                    now_s,
                                    outcome="shed",
                                )
                            attempt_failed(victim.request_id, now_s)
                    else:
                        shed(SHED_QUEUE_FULL, machine, now_s)
                        attempt_failed(request_id, now_s)
                        return
            if breakers is not None:
                breakers[machine].note_probe()
            attempt = _Attempt(request_id, machine, now_s)
            attempt_id = len(attempts)
            attempts.append(attempt)
            request.live_attempts += 1
            queues[machine].append(attempt_id)
            if ovl_stats is not None:
                ovl_stats.admitted += 1
                depth = waiting_depth(machine)
                if depth > ovl_stats.max_queue_depth:
                    ovl_stats.max_queue_depth = depth
            if tracer.enabled:
                attempt_span[attempt_id] = tracer.begin(
                    "serving.router.attempt",
                    now_s,
                    parent_id=request_span.get(request_id),
                    track=machine,
                )
            if policy.timeout_s is not None:
                push(now_s + policy.timeout_s, _EV_TIMEOUT, attempt_id)
            start_next(machine, now_s)

        def attempt_failed(request_id: int, now_s: float) -> None:
            """An attempt died; retry with backoff or fail the request."""
            nonlocal retries, failed
            request = requests[request_id]
            if request.done or request.failed or request.live_attempts > 0:
                return  # a hedge twin is still in flight
            if request.retries_used < policy.max_retries:
                delay_s = policy.backoff_s(request.retries_used)
                request.retries_used += 1
                retries += 1
                if tracer.enabled:
                    tracer.instant(
                        "serving.router.retry",
                        now_s,
                        track=client_track,
                        attempt=request.retries_used,
                    )
                push(now_s + delay_s, _EV_ARRIVAL, request_id, 1)
            else:
                request.failed = True
                failed += 1
                if tracer.enabled and request_id in request_span:
                    tracer.end(
                        request_span.pop(request_id), now_s, outcome="failed"
                    )

        # ------------------------------------------------------- event loop

        while events:
            now_s, _, kind, a, b = heapq.heappop(events)

            if kind == _EV_ARRIVAL:
                request_id, is_retry = a, bool(b)
                request = requests[request_id]
                if request.done or request.failed:
                    continue
                if not is_retry:
                    if brownout is not None:
                        cands = [
                            m for m in range(self.num_machines) if admitted[m]
                        ]
                        pressure = (
                            sum(queue_len(m) for m in cands) / len(cands)
                            if cands
                            else float("inf")
                        )
                        before_tier = brownout.tier
                        request.tier = brownout.update(now_s, pressure)
                        if brownout.tier != before_tier:
                            if tracer.enabled:
                                tracer.instant(
                                    "serving.brownout.step",
                                    now_s,
                                    track=client_track,
                                    tier=brownout.tier,
                                )
                            if (
                                ovl_stats is not None
                                and brownout.tier > ovl_stats.max_brownout_tier
                            ):
                                ovl_stats.max_brownout_tier = brownout.tier
                    request.degraded = degraded_now(now_s)
                    if tracer.enabled:
                        request_span[request_id] = tracer.begin(
                            "serving.router.request",
                            now_s,
                            track=client_track,
                            degraded=request.degraded,
                        )
                if (
                    not is_retry
                    and policy.hedge_delay_s is not None
                ):
                    push(now_s + policy.hedge_delay_s, _EV_HEDGE, request_id)
                route_attempt(request_id, now_s)

            elif kind == _EV_COMPLETE:
                attempt_id, machine = a, b
                attempt = attempts[attempt_id]
                if running[machine] != attempt_id:
                    continue  # killed by a crash; the restart superseded it
                running[machine] = None
                breaker_success(machine, now_s)
                if attempt.state == _CANCELLED:
                    # Abandoned by a timeout but ran to completion anyway:
                    # the occupancy was real, the response is discarded.
                    wasted_attempts += 1
                    start_next(machine, now_s)
                    continue
                attempt.state = _DONE
                request = requests[attempt.request_id]
                request.live_attempts -= 1
                if request.done or request.failed:
                    wasted_attempts += 1
                    if tracer.enabled and attempt_id in attempt_span:
                        tracer.end(
                            attempt_span.pop(attempt_id),
                            now_s,
                            outcome="wasted",
                        )
                else:
                    request.done = True
                    request.latency_s = now_s - request.arrival_s
                    latencies.append(request.latency_s)
                    if ovl_stats is not None and brownout is not None:
                        ovl_stats.completions_by_tier[request.tier] += 1
                    if request.degraded:
                        degraded_completions += 1
                    if tracer.enabled:
                        if attempt_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(attempt_id),
                                now_s,
                                outcome="ok",
                            )
                        if attempt.request_id in request_span:
                            tracer.end(
                                request_span.pop(attempt.request_id),
                                now_s,
                                outcome="ok",
                            )
                start_next(machine, now_s)

            elif kind == _EV_TIMEOUT:
                attempt_id = a
                attempt = attempts[attempt_id]
                request = requests[attempt.request_id]
                if request.done or request.failed or attempt.state in (_CANCELLED, _DONE):
                    continue
                # The client abandons this attempt. Queued work is dropped;
                # in-flight work cannot be yanked back — it keeps occupying
                # the machine and completes as waste (see _EV_COMPLETE).
                breaker_failure(attempt.machine, now_s)
                attempt.state = _CANCELLED
                request.live_attempts -= 1
                if tracer.enabled:
                    tracer.instant(
                        "serving.router.timeout", now_s, track=attempt.machine
                    )
                    if attempt_id in attempt_span:
                        tracer.end(
                            attempt_span.pop(attempt_id),
                            now_s,
                            outcome="timeout",
                        )
                attempt_failed(attempt.request_id, now_s)

            elif kind == _EV_HEDGE:
                request_id = a
                request = requests[request_id]
                if request.done or request.failed or request.live_attempts == 0:
                    continue
                hedges += 1
                request.hedged = True
                if tracer.enabled:
                    tracer.instant(
                        "serving.router.hedge", now_s, track=client_track
                    )
                route_attempt(request_id, now_s)

            elif kind == _EV_FAULT:
                machine, goes_down = a, bool(b)
                if goes_down:
                    up[machine] = False
                    breaker_failure(machine, now_s)
                    if tracer.enabled:
                        tracer.instant(
                            "serving.router.crash", now_s, track=machine
                        )
                    if policy.health_check_interval_s is None:
                        eject(machine)
                    attempt_id = running[machine]
                    if attempt_id is not None:
                        running[machine] = None
                        attempt = attempts[attempt_id]
                        if attempt.state == _RUNNING:
                            attempt.state = _CANCELLED
                            requests[attempt.request_id].live_attempts -= 1
                            if tracer.enabled and attempt_id in attempt_span:
                                tracer.end(
                                    attempt_span.pop(attempt_id),
                                    now_s,
                                    outcome="killed",
                                )
                            attempt_failed(attempt.request_id, now_s)
                    # Queued work fails fast (connection reset).
                    dead, queues[machine] = queues[machine], []
                    for attempt_id in dead:
                        attempt = attempts[attempt_id]
                        if attempt.state == _QUEUED:
                            attempt.state = _CANCELLED
                            requests[attempt.request_id].live_attempts -= 1
                            if tracer.enabled and attempt_id in attempt_span:
                                tracer.end(
                                    attempt_span.pop(attempt_id),
                                    now_s,
                                    outcome="reset",
                                )
                            attempt_failed(attempt.request_id, now_s)
                else:
                    up[machine] = True
                    if tracer.enabled:
                        tracer.instant(
                            "serving.router.restart", now_s, track=machine
                        )
                    if policy.health_check_interval_s is None:
                        admitted[machine] = True

            elif kind == _EV_HEALTH:
                for machine in range(self.num_machines):
                    admitted[machine] = up[machine]

        if degraded_on:
            time_in_degraded_s += duration_s - degraded_since_s
        if ovl_stats is not None:
            if brownout is not None:
                brownout.finish(duration_s)
                ovl_stats.brownout_switches = brownout.switches
                ovl_stats.time_in_tier_s = list(brownout.time_in_tier_s)
            if breakers is not None:
                ovl_stats.breaker_opens = sum(b.opens for b in breakers)
        # Unresolved requests at drain end (e.g. waiting forever on a down
        # replica with no timeout) are neither completed nor failed; they
        # count against availability via ``offered``.
        if tracer.enabled and tracer.open_spans():
            tracer.close_all(max(now_s, duration_s), outcome="unresolved")
        if self.metrics is not None:
            self._record_metrics(
                n_offered=n_offered,
                completed=len(latencies),
                failed=failed,
                retries=retries,
                hedges=hedges,
                wasted_attempts=wasted_attempts,
                fail_fasts=fail_fasts,
                ejections=ejections,
                degraded_completions=degraded_completions,
                time_in_degraded_s=time_in_degraded_s,
                latencies=latencies,
                overload_stats=ovl_stats,
            )
        return FaultyServingResult(
            policy=policy,
            num_machines=self.num_machines,
            offered_qps=offered_qps,
            duration_s=duration_s,
            sla=sla,
            latencies_s=np.asarray(latencies, dtype=np.float64),
            offered=n_offered,
            failed=failed,
            retries=retries,
            hedges=hedges,
            wasted_attempts=wasted_attempts,
            fail_fasts=fail_fasts,
            ejections=ejections,
            degraded_completions=degraded_completions,
            time_in_degraded_s=time_in_degraded_s,
            quality=self._quality,
            overload=ovl_stats,
            brownout_quality=self._brownout_quality if brownout is not None else None,
        )
