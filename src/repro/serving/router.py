"""Request routing across replicated inference servers (queueing DES).

Data-center front-ends spread queries across many model replicas; the
routing policy shapes tail latency long before micro-architecture does.
This simulator complements :mod:`repro.serving.simulator` (contention on
one machine) with the fleet view: M machines serving one model, Poisson
query arrivals, and three classic policies —

* round-robin — cyclic, state-free;
* random — uniform choice;
* JSQ(d) — "power of d choices": sample d machines, pick the shortest
  queue; ``d=2`` captures most of join-shortest-queue's benefit at a
  fraction of its probing cost.

Service times come from the timing model plus lognormal noise, so the
policies are compared under realistic variability.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..analysis.distributions import LatencySummary, summarize
from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel

POLICIES = ("round_robin", "random", "jsq2")

#: Multiplicative service-time noise (lognormal sigma).
SERVICE_NOISE_SIGMA = 0.10


def pick_machine(
    policy: str,
    rng: np.random.Generator,
    queue_depth: list[int],
    rr_state: list[int],
    candidates: list[int] | None = None,
) -> int:
    """Select a target machine under one of :data:`POLICIES`.

    Shared by :class:`RequestRouter` (happy path) and
    :class:`repro.serving.faults.ResilientRouter` (which restricts
    ``candidates`` to replicas its health checks still admit).

    Args:
        policy: one of :data:`POLICIES`.
        rng: the caller's seeded generator.
        queue_depth: current depth per machine (indexed by machine id).
        rr_state: single-element mutable round-robin cursor.
        candidates: admissible machine ids; ``None`` means all.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; valid: {POLICIES}")
    pool = list(range(len(queue_depth))) if candidates is None else list(candidates)
    if not pool:
        raise ValueError("no candidate machines to route to")
    if policy == "round_robin":
        machine = pool[rr_state[0] % len(pool)]
        rr_state[0] += 1
        return machine
    if policy == "random":
        return int(pool[int(rng.integers(len(pool)))])
    # jsq2: sample two distinct candidates, pick the shorter queue.
    if len(pool) == 1:
        return pool[0]
    a, b = rng.choice(len(pool), size=2, replace=False)
    a, b = pool[int(a)], pool[int(b)]
    return a if queue_depth[a] <= queue_depth[b] else b


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of one routing simulation.

    ``shed`` counts queries dropped at admission because the chosen
    machine's queue was at ``queue_capacity`` (0 when unbounded);
    ``max_queue_depth`` is the deepest per-machine backlog observed.
    """

    policy: str
    num_machines: int
    offered_qps: float
    latencies_s: np.ndarray
    duration_s: float
    shed: int = 0
    max_queue_depth: int = 0

    def summary(self) -> LatencySummary:
        """Per-query latency percentiles."""
        return summarize(self.latencies_s)

    def throughput_qps(self) -> float:
        """Completed queries per second."""
        return len(self.latencies_s) / self.duration_s


class RequestRouter:
    """Simulates one routing policy over replicated servers.

    Args:
        server: machine generation (all replicas identical).
        config: the model each replica serves.
        batch_size: items per query (each query is one inference).
        num_machines: replica count.
        policy: one of :data:`POLICIES`.
        seed: RNG seed.
        queue_capacity: admission bound per machine — a query routed to a
            machine whose queue (waiting + in service) is at capacity is
            shed (reject-newest) instead of enqueued. ``None`` (the
            default) keeps the historical unbounded behaviour bit for
            bit; richer shed policies live in
            :class:`~repro.serving.overload.AdmissionPolicy` via
            :class:`~repro.serving.faults.ResilientRouter`.
    """

    def __init__(
        self,
        server: ServerSpec,
        config: ModelConfig,
        batch_size: int,
        num_machines: int,
        policy: str = "jsq2",
        seed: int = 0,
        queue_capacity: int | None = None,
    ) -> None:
        if num_machines < 1:
            raise ValueError("need at least one machine")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; valid: {POLICIES}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        self.queue_capacity = queue_capacity
        self.server = server
        self.config = config
        self.batch_size = batch_size
        self.num_machines = num_machines
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self._base_service = TimingModel(server).model_latency(
            config, batch_size
        ).total_seconds

    def mean_service_s(self) -> float:
        """Mean per-query service time."""
        return self._base_service

    def max_stable_qps(self) -> float:
        """Arrival rate at 100% utilization (stability boundary)."""
        return self.num_machines / self._base_service

    def _pick_machine(self, queue_depth: list[int], rr_state: list[int]) -> int:
        return pick_machine(self.policy, self._rng, queue_depth, rr_state)

    def run(self, offered_qps: float, duration_s: float = 1.0) -> RoutingResult:
        """Simulate ``duration_s`` of Poisson arrivals at ``offered_qps``."""
        if offered_qps <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        rng = self._rng
        arrivals = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / offered_qps))
            if t >= duration_s:
                break
            arrivals.append(t)

        queue_depth = [0] * self.num_machines
        free_at = [0.0] * self.num_machines
        rr_state = [0]
        # Event queue of completions: (finish_time, seq, machine).
        completions: list[tuple[float, int, int]] = []
        latencies: list[float] = []
        seq = 0
        shed = 0
        max_queue_depth = 0
        for arrival in arrivals:
            # Drain completions before this arrival to keep queues current.
            while completions and completions[0][0] <= arrival:
                _, _, machine = heapq.heappop(completions)
                queue_depth[machine] -= 1
            machine = self._pick_machine(queue_depth, rr_state)
            if (
                self.queue_capacity is not None
                and queue_depth[machine] >= self.queue_capacity
            ):
                # Admission bound: shed before the service draw, so the
                # unbounded (capacity=None) run is untouched bit for bit.
                shed += 1
                continue
            sigma = SERVICE_NOISE_SIGMA
            service = self._base_service * float(
                rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)
            )
            start = max(arrival, free_at[machine])
            finish = start + service
            free_at[machine] = finish
            queue_depth[machine] += 1
            if queue_depth[machine] > max_queue_depth:
                max_queue_depth = queue_depth[machine]
            heapq.heappush(completions, (finish, seq, machine))
            seq += 1
            latencies.append(finish - arrival)

        return RoutingResult(
            policy=self.policy,
            num_machines=self.num_machines,
            offered_qps=offered_qps,
            latencies_s=np.asarray(latencies),
            duration_s=duration_s,
            shed=shed,
            max_queue_depth=max_queue_depth,
        )


def compare_policies(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    num_machines: int,
    utilization: float = 0.8,
    duration_s: float = 2.0,
    seed: int = 0,
) -> dict[str, RoutingResult]:
    """Run every policy at the same offered load (fraction of capacity)."""
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    probe = RequestRouter(server, config, batch_size, num_machines, seed=seed)
    qps = utilization * probe.max_stable_qps()
    out = {}
    for policy in POLICIES:
        router = RequestRouter(
            server, config, batch_size, num_machines, policy=policy, seed=seed
        )
        out[policy] = router.run(qps, duration_s)
    return out
