"""Cost-optimal fleet provisioning across server generations.

The buying-side counterpart of :mod:`repro.serving.cluster`: given the
demand mix, per-generation machine costs (capex+power amortized to a
$/machine-hour figure), and the per-(generation, model) serving rates,
choose how many machines of each generation to buy so the demand is met at
minimum cost. A linear program over machine counts and time assignments;
counts are then rounded up to integers (the classic LP-relaxation bound:
the integral solution costs at most one extra machine per pool).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from .cluster import WorkloadDemand, _normalized_weights, _rate_matrix
from ..hw.server import ServerSpec


@dataclass(frozen=True)
class PricedGeneration:
    """One purchasable server generation."""

    server: ServerSpec
    cost_per_hour: float

    def __post_init__(self) -> None:
        if self.cost_per_hour <= 0:
            raise ValueError("cost must be positive")


#: Representative relative hourly costs (newer generations cost more).
DEFAULT_PRICES = {"Haswell": 0.7, "Broadwell": 1.0, "Skylake": 1.3}


@dataclass(frozen=True)
class ProvisioningPlan:
    """A purchase recommendation."""

    machine_counts: dict[str, int]
    fractional_counts: dict[str, float]
    cost_per_hour: float
    demand_items_per_s: float

    @property
    def total_machines(self) -> int:
        """Machines across all generations."""
        return sum(self.machine_counts.values())


def provision_min_cost(
    generations: list[PricedGeneration],
    demands: list[WorkloadDemand],
    total_items_per_s: float,
) -> ProvisioningPlan:
    """Minimum-cost machine mix serving ``total_items_per_s`` of the mix.

    Variables: y[i][j] — machine-equivalents of generation i dedicated to
    demand j. Minimize ``sum_i cost_i * sum_j y_ij`` subject to
    ``sum_i y_ij rate_ij >= total * weight_j``.
    """
    if total_items_per_s <= 0:
        raise ValueError("demand must be positive")
    if not generations or not demands:
        raise ValueError("need generations and demands")
    from .cluster import MachinePool

    pools = [MachinePool(g.server, 1) for g in generations]
    rates = _rate_matrix(pools, demands)
    weights = _normalized_weights(demands)
    n_gen, n_dem = rates.shape

    c = np.repeat([g.cost_per_hour for g in generations], n_dem)
    a_ub = np.zeros((n_dem, n_gen * n_dem))
    b_ub = np.zeros(n_dem)
    for j in range(n_dem):
        for i in range(n_gen):
            a_ub[j, i * n_dem + j] = -rates[i, j]
        b_ub[j] = -total_items_per_s * weights[j]

    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * (n_gen * n_dem),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(
            "provisioning LP infeasible — is some demand unservable under "
            f"its SLA? ({result.message})"
        )
    y = result.x.reshape(n_gen, n_dem)
    fractional = {
        g.server.name: float(y[i].sum()) for i, g in enumerate(generations)
    }
    counts = {name: int(np.ceil(v - 1e-9)) for name, v in fractional.items()}
    cost = sum(
        counts[g.server.name] * g.cost_per_hour for g in generations
    )
    return ProvisioningPlan(
        machine_counts=counts,
        fractional_counts=fractional,
        cost_per_hour=cost,
        demand_items_per_s=total_items_per_s,
    )


def single_generation_cost(
    generation: PricedGeneration,
    demands: list[WorkloadDemand],
    total_items_per_s: float,
) -> float | None:
    """Hourly cost of serving everything on one generation (None if it
    cannot meet some demand's SLA)."""
    plan_input = [generation]
    try:
        plan = provision_min_cost(plan_input, demands, total_items_per_s)
    except RuntimeError:
        return None
    return plan.cost_per_hour
