"""Vectorized fleet-scale discrete-event engines (the PR-5 pattern, applied
to the DES itself).

The per-event python loops in :class:`~repro.serving.simulator.ServingSimulator`
and :class:`~repro.serving.faults.ResilientRouter` are the *executable spec*:
every behaviour question is settled by reading them. This module adds a
second engine per simulator — selected with ``engine="vectorized"`` — that
reproduces the spec **bit for bit** (records, summaries, overload stats,
availability, RNG stream position) while running one to two orders of
magnitude faster:

* arrivals are generated in numpy chunks whose values *and* final RNG state
  are provably identical to the scalar draw loops
  (:func:`poisson_arrival_times`);
* service-time noise comes from a chunked standard-normal stream
  (:class:`NormalStream`) using the ``lognormal(m, s) == exp(m + s*z)``
  identity, with the generator re-synchronised to the scalar stream on
  close;
* static events (arrivals, fault transitions, health probes) are pre-sorted
  once with a stable sort instead of heap-pushed one by one, and merged
  against a small lazy heap of dynamic events (completions, timeouts,
  hedges, retries) with explicit sequence-number tie-breaking that matches
  the reference heap's ``(t, seq)`` total order;
* fleet-level O(M)-per-event scans (queue depths, candidate lists, waiting
  depths, brownout pressure) are replaced by O(1) incrementally-maintained
  state — the big win at ~1000 replicas;
* completed inferences can be accumulated as a struct-of-arrays
  :class:`RecordBatch` instead of per-record dataclasses (only when no
  tracer/profiler is observing; observers see real records);
* an optional self-compiled C kernel (:mod:`repro.serving._des_native`,
  built through the same build cache as :mod:`repro.hw._native`) runs the
  single-machine simulator loop natively, calling back into python only for
  timing-model prices and RNG refills.

Equivalence is enforced by ``tests/test_des_equivalence.py`` (hypothesis
property suite over random policy x fault x load x tier compositions) and
``tests/test_des_edge_cases.py``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from .overload import (
    BREAKER_CLOSED,
    SHED_CODEL,
    SHED_DEADLINE,
    SHED_OLDEST,
    SHED_QUEUE_FULL,
    BrownoutController,
    CircuitBreaker,
    OverloadStats,
)
from .router import SERVICE_NOISE_SIGMA, pick_machine

if TYPE_CHECKING:
    from .faults import FaultSchedule, FaultyServingResult, ResilientRouter
    from .metrics import SLA
    from .simulator import ServingSimulator, SimulationResult

__all__ = [
    "BACKENDS",
    "ENGINES",
    "NormalStream",
    "RecordBatch",
    "poisson_arrival_times",
    "run_router_vectorized",
    "run_simulator_vectorized",
    "validate_backend",
    "validate_engine",
]

#: DES engine selector: the reference per-event loop (the executable spec)
#: or the batched SoA engine in this module (bit-identical, much faster).
ENGINES = ("reference", "vectorized")

#: Vectorized-engine backend selector: ``auto`` tries the self-compiled C
#: kernel and falls back to the batched python loop; ``python`` forces the
#: fallback; ``native`` requires the kernel (RuntimeError when absent).
BACKENDS = ("auto", "python", "native")


def validate_engine(engine: str) -> str:
    """Validate an ``engine=`` argument; returns it unchanged."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; valid: {ENGINES}")
    return engine


def validate_backend(backend: str) -> str:
    """Validate a ``backend=`` argument; returns it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; valid: {BACKENDS}")
    return backend


# Local stand-ins for the fault/health event kinds: the reference encodes
# them as _EV_FAULT/_EV_HEALTH heap entries; the router's merged loop
# sources them from pre-sorted arrays, so only dispatch tags are needed
# (negative, to stay clear of the faults-module kinds).
_EV_FAULT_LOCAL = -2
_EV_HEALTH_LOCAL = -3


# ------------------------------------------------------------- RNG parity


def poisson_arrival_times(
    rng: np.random.Generator,
    rate_qps: float,
    duration_s: float,
    chunk: int = 8192,
) -> np.ndarray:
    """Arrival times of a Poisson process, bit-identical to the scalar loop.

    Reproduces exactly::

        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_qps))
            if t >= duration_s:
                break
            times.append(t)

    both in values (``cumsum`` over a concatenation that includes the
    running offset reproduces scalar float accumulation bit for bit) and
    in the generator's final state (the last chunk is rolled back and
    re-drawn at the exact scalar count, including the draw that crossed
    the horizon).
    """
    scale = 1.0 / rate_qps
    out = []
    t = 0.0
    while True:
        state = rng.bit_generator.state
        gaps = rng.exponential(scale, size=chunk)
        times = np.cumsum(np.concatenate(([t], gaps)))[1:]
        crossed = int(np.searchsorted(times, duration_s, side="left"))
        if crossed < chunk:
            rng.bit_generator.state = state
            rng.exponential(scale, size=crossed + 1)
            out.append(times[:crossed])
            break
        out.append(times)
        t = float(times[-1])
    return np.concatenate(out) if len(out) > 1 else out[0]


class NormalStream:
    """Chunked standard normals, stream-compatible with scalar lognormals.

    Each ``rng.lognormal(m, s)`` call consumes exactly one standard-normal
    draw and returns ``exp(m + s*z)``; chunked ``standard_normal(n)``
    produces the same ``z`` sequence as ``n`` scalar draws. The stream
    therefore hands out bit-identical noise while drawing in batches.
    :meth:`close` rolls the generator back and re-draws exactly the
    consumed count, leaving it in the scalar loop's final state.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 8192) -> None:
        self._rng = rng
        self._chunk = chunk
        self._buf: list[float] = []
        self._pos = 0
        self.consumed = 0
        self._state0 = rng.bit_generator.state

    def next(self) -> float:
        """One standard-normal draw (python float)."""
        if self._pos >= len(self._buf):
            self._buf = self._rng.standard_normal(self._chunk).tolist()
            self._pos = 0
        z = self._buf[self._pos]
        self._pos += 1
        self.consumed += 1
        return z

    def close(self) -> None:
        """Re-synchronise the generator to the scalar draw count."""
        self._rng.bit_generator.state = self._state0
        if self.consumed:
            self._rng.standard_normal(self.consumed)


# ------------------------------------------------------------ SoA records


class RecordBatch(Sequence):
    """Struct-of-arrays store of completed inferences.

    Duck-compatible with a ``list[InferenceRecord]`` — indexing materialises
    a real :class:`~repro.serving.simulator.InferenceRecord` — while the
    array accessors (:meth:`latencies_s`, :meth:`service_times_s`,
    :meth:`active_job_counts`) short-circuit the per-record loops in
    :class:`~repro.serving.simulator.SimulationResult`. Element order and
    float values are identical to the reference engine's record list.
    """

    __slots__ = (
        "instance_ids",
        "arrivals_s",
        "starts_s",
        "ends_s",
        "active_jobs",
        "services_s",
    )

    def __init__(self, rows: list[tuple] | None = None) -> None:
        data = (
            np.array(rows, dtype=np.float64)
            if rows
            else np.empty((0, 6), dtype=np.float64)
        )
        self.instance_ids = data[:, 0].astype(np.int64)
        self.arrivals_s = np.ascontiguousarray(data[:, 1])
        self.starts_s = np.ascontiguousarray(data[:, 2])
        self.ends_s = np.ascontiguousarray(data[:, 3])
        self.active_jobs = data[:, 4].astype(np.int64)
        self.services_s = np.ascontiguousarray(data[:, 5])

    @classmethod
    def from_columns(
        cls,
        instance_ids: np.ndarray,
        arrivals_s: np.ndarray,
        starts_s: np.ndarray,
        ends_s: np.ndarray,
        active_jobs: np.ndarray,
        services_s: np.ndarray,
    ) -> "RecordBatch":
        """Build directly from pre-separated columns (native kernel path)."""
        batch = cls.__new__(cls)
        batch.instance_ids = instance_ids.astype(np.int64)
        batch.arrivals_s = np.ascontiguousarray(arrivals_s, dtype=np.float64)
        batch.starts_s = np.ascontiguousarray(starts_s, dtype=np.float64)
        batch.ends_s = np.ascontiguousarray(ends_s, dtype=np.float64)
        batch.active_jobs = active_jobs.astype(np.int64)
        batch.services_s = np.ascontiguousarray(services_s, dtype=np.float64)
        return batch

    def __len__(self) -> int:
        return int(self.arrivals_s.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        from .simulator import InferenceRecord

        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("record index out of range")
        return InferenceRecord(
            instance_id=int(self.instance_ids[index]),
            arrival_s=float(self.arrivals_s[index]),
            start_s=float(self.starts_s[index]),
            end_s=float(self.ends_s[index]),
            active_jobs=int(self.active_jobs[index]),
            service_s=float(self.services_s[index]),
        )

    def latencies_s(self) -> np.ndarray:
        """End-to-end latency per record (bitwise ``end - arrival``)."""
        return self.ends_s - self.arrivals_s

    def service_times_s(self) -> np.ndarray:
        """Service time per record."""
        return self.services_s.copy()

    def active_job_counts(self) -> np.ndarray:
        """Dispatch-time active-job count per record."""
        return self.active_jobs.copy()


# ------------------------------------------------- single-machine simulator


def _finish_sim_result(
    sim: "ServingSimulator",
    duration_s: float,
    records,
    offered: int,
    killed: int,
    shed_count: int,
    max_queue_depth: int,
    leftover_depth: int,
) -> "SimulationResult":
    """Shared epilogue: downtime accounting, metrics, result assembly."""
    from .simulator import SimulationResult

    faults = sim.faults
    fault_active = faults is not None and not faults.is_zero
    downtime_s = 0.0
    if fault_active:
        assert faults is not None
        downtime_s = sum(
            faults.downtime_s(i, duration_s) for i in range(sim.num_instances)
        )
    if sim.metrics is not None:
        sim.metrics.gauge("serving.queue.depth").set(float(leftover_depth))
        sim.metrics.gauge("serving.queue.max_depth").set(float(max_queue_depth))
        sim.metrics.counter("serving.overload.shed").inc(shed_count)
    return SimulationResult(
        server_name=sim.server.name,
        model_name=sim.config.name,
        batch_size=sim.batch_size,
        num_instances=sim.num_instances,
        duration_s=duration_s,
        records=records,
        offered=offered,
        killed=killed,
        downtime_s=downtime_s,
        shed=shed_count,
        max_queue_depth=max_queue_depth,
    )


def run_simulator_vectorized(
    sim: "ServingSimulator", duration_s: float
) -> "SimulationResult":
    """The vectorized engine behind ``ServingSimulator.run``.

    Bit-identical to ``ServingSimulator._run_reference``: same records in
    the same order, same counters, same RNG stream position afterwards,
    same metrics and (when a tracer/profiler observes) same spans.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = sim._rng
    faults = sim.faults
    fault_active = faults is not None and not faults.is_zero
    num_instances = sim.num_instances
    closed_loop = sim.per_instance_qps is None

    # Arrival pre-generation, consuming the RNG exactly as the scalar
    # reference loop does (instance-major order).
    if closed_loop:
        first_arrivals = rng.uniform(0, 1e-4, size=num_instances)
        per_instance = [first_arrivals[i : i + 1] for i in range(num_instances)]
    else:
        per_instance = [
            poisson_arrival_times(rng, sim.per_instance_qps, duration_s)
            for _ in range(num_instances)
        ]
    counts = [len(a) for a in per_instance]
    offered = int(sum(counts))
    st_times = np.concatenate(per_instance)
    st_kinds = np.zeros(st_times.size, dtype=np.int64)
    st_insts = np.repeat(np.arange(num_instances, dtype=np.int64), counts)
    if fault_active:
        assert faults is not None
        transitions = faults.transition_events(num_instances)
        if transitions:
            st_times = np.concatenate(
                [st_times, np.array([e[0] for e in transitions], dtype=np.float64)]
            )
            st_kinds = np.concatenate(
                [
                    st_kinds,
                    np.array(
                        [2 if e[2] else 3 for e in transitions], dtype=np.int64
                    ),
                ]
            )
            st_insts = np.concatenate(
                [st_insts, np.array([e[1] for e in transitions], dtype=np.int64)]
            )
    # One stable sort by time reproduces the reference heap's (t, seq)
    # total order: arrivals carry lower seqs than fault transitions, and
    # both were appended above in seq order.
    order = np.argsort(st_times, kind="stable")
    st_t: list[float] = st_times[order].tolist()
    st_kind: list[int] = st_kinds[order].tolist()
    st_inst: list[int] = st_insts[order].tolist()

    tracer = sim.tracer
    observing = tracer.enabled or sim.profiler is not None

    if not observing and sim.backend != "python":
        from ._des_native import simulate_native

        native = simulate_native(sim, duration_s, offered, st_t, st_kind, st_inst)
        if native is not None:
            sim.last_backend = "native"
            records, offered, killed, shed_count, max_depth, leftover = native
            return _finish_sim_result(
                sim,
                duration_s,
                records,
                offered,
                killed,
                shed_count,
                max_depth,
                leftover,
            )
        if sim.backend == "native":
            raise RuntimeError(
                "native DES backend requested but unavailable "
                "(no C compiler, or REPRO_DISABLE_NATIVE=1)"
            )
    sim.last_backend = "python"

    if tracer.enabled:
        for i in range(num_instances):
            tracer.set_track_name(i, f"instance {i}")

    admission = sim.overload.admission if sim.overload is not None else None
    codels = (
        [admission.make_codel() for _ in range(num_instances)]
        if admission is not None
        else None
    )
    busy = [False] * num_instances
    busy_count = 0
    down = [False] * num_instances
    epoch = [0] * num_instances
    killed = 0
    shed_count = 0
    max_queue_depth = 0
    queues: list[deque] = [deque() for _ in range(num_instances)]
    current: list = [None] * num_instances
    rows: list[tuple] = []
    records: list = []
    normals = NormalStream(rng)
    memory_fraction = sim._memory_fraction
    svc_cache: dict[int, tuple[float, float, float]] = {}

    def svc_params(active: int) -> tuple[float, float, float]:
        """(base_s, lognormal mean, sigma) at one contention level."""
        params = svc_cache.get(active)
        if params is None:
            base_s = sim._base_latency(active).total_seconds
            sigma = sim.noise_sigma(active)
            params = (base_s, -0.5 * sigma**2, sigma)
            svc_cache[active] = params
        return params

    def shed_one(instance: int, now_s: float, reason: str) -> None:
        nonlocal shed_count
        shed_count += 1
        if tracer.enabled:
            tracer.instant(
                "serving.overload.shed", now_s, track=instance, reason=reason
            )

    def admit(instance: int, now_s: float) -> bool:
        assert admission is not None
        depth = len(queues[instance])
        if (
            admission.shed_policy == "deadline_aware"
            and admission.deadline_s is not None
        ):
            expected_s = svc_params(busy_count + 1)[0]
            if (depth + 2) * expected_s > admission.deadline_s:
                shed_one(instance, now_s, SHED_DEADLINE)
                return False
        if depth >= admission.queue_capacity:
            if admission.shed_policy == "reject_oldest":
                queues[instance].popleft()
                shed_one(instance, now_s, SHED_OLDEST)
                return True
            shed_one(instance, now_s, SHED_QUEUE_FULL)
            return False
        return True

    def next_arrival(instance: int, now_s: float) -> float | None:
        queue = queues[instance]
        while queue:
            arrival_s = queue.popleft()
            if (
                codels is not None
                and codels[instance] is not None
                and codels[instance].on_dequeue(now_s - arrival_s, now_s)
            ):
                shed_one(instance, now_s, SHED_CODEL)
                continue
            return arrival_s
        return None

    heap: list[tuple[float, int, int, int]] = []
    dseq = 0

    def dispatch(instance: int, arrival_s: float, now_s: float) -> None:
        nonlocal dseq, busy_count
        active = busy_count + 1
        base_s, log_mean, sigma = svc_params(active)
        service_s = base_s * math.exp(log_mean + sigma * normals.next())
        if fault_active:
            assert faults is not None
            service_s *= faults.service_multiplier(
                instance, now_s, memory_fraction
            )
        busy[instance] = True
        busy_count += 1
        end_s = now_s + service_s
        if observing:
            from .simulator import InferenceRecord

            current[instance] = InferenceRecord(
                instance_id=instance,
                arrival_s=arrival_s,
                start_s=now_s,
                end_s=end_s,
                active_jobs=active,
                service_s=service_s,
            )
        else:
            current[instance] = (arrival_s, now_s, end_s, active, service_s)
        heapq.heappush(heap, (end_s, dseq, instance, epoch[instance]))
        dseq += 1

    si = 0
    n_static = len(st_t)
    while si < n_static or heap:
        if si < n_static and (not heap or st_t[si] <= heap[0][0]):
            now_s = st_t[si]
            kind = st_kind[si]
            instance = st_inst[si]
            si += 1
            if kind == 0:  # arrival
                if now_s >= duration_s:
                    continue
                if busy[instance] or down[instance]:
                    if admission is not None and not admit(instance, now_s):
                        continue
                    queues[instance].append(now_s)
                    if len(queues[instance]) > max_queue_depth:
                        max_queue_depth = len(queues[instance])
                else:
                    dispatch(instance, now_s, now_s)
            elif kind == 2:  # replica crash
                down[instance] = True
                epoch[instance] += 1
                if tracer.enabled:
                    tracer.instant("serving.sim.crash", now_s, track=instance)
                if busy[instance]:
                    killed += 1
                    if tracer.enabled:
                        dead = current[instance]
                        assert dead is not None
                        tracer.complete(
                            "serving.sim.request",
                            dead.arrival_s,
                            now_s,
                            track=instance,
                            active_jobs=dead.active_jobs,
                            outcome="killed",
                        )
                    busy[instance] = False
                    busy_count -= 1
                    current[instance] = None
            else:  # kind == 3: replica restart
                down[instance] = False
                if tracer.enabled:
                    tracer.instant("serving.sim.restart", now_s, track=instance)
                if now_s >= duration_s:
                    continue
                arrival_s = next_arrival(instance, now_s)
                if arrival_s is not None:
                    dispatch(instance, arrival_s, now_s)
                elif closed_loop and not busy[instance]:
                    offered += 1
                    dispatch(instance, now_s, now_s)
        else:  # completion
            now_s, _, instance, ev_epoch = heapq.heappop(heap)
            if ev_epoch != epoch[instance]:
                continue  # the inference was killed by a crash
            record = current[instance]
            assert record is not None
            if observing:
                records.append(record)
                sim._observe_completion(record)
            else:
                rows.append(
                    (
                        instance,
                        record[0],
                        record[1],
                        record[2],
                        record[3],
                        record[4],
                    )
                )
            busy[instance] = False
            busy_count -= 1
            current[instance] = None
            if now_s >= duration_s:
                continue
            arrival_s = next_arrival(instance, now_s)
            if arrival_s is not None:
                dispatch(instance, arrival_s, now_s)
            elif closed_loop:
                offered += 1
                dispatch(instance, now_s, now_s)

    normals.close()
    leftover = sum(len(q) for q in queues)
    return _finish_sim_result(
        sim,
        duration_s,
        records if observing else RecordBatch(rows),
        offered,
        killed,
        shed_count,
        max_queue_depth,
        leftover,
    )


# --------------------------------------------------------- fleet router


def run_router_vectorized(
    router: "ResilientRouter",
    offered_qps: float,
    duration_s: float,
    faults: "FaultSchedule | None",
    sla: "SLA | None",
    arrival_times_s: Sequence[float] | None,
) -> "FaultyServingResult":
    """The vectorized engine behind ``ResilientRouter.run``.

    Replaces the reference loop's O(M)-per-event scans (depth lists,
    candidate lists, waiting-depth sums, brownout pressure) with O(1)
    incrementally-maintained aggregates, and heap-pushed static events
    with one stable pre-sort — while replaying the exact event order,
    RNG draws, policy decisions and accounting of the reference engine.
    """
    from .faults import (
        _CANCELLED,
        _DONE,
        _EV_ARRIVAL,
        _EV_COMPLETE,
        _EV_HEDGE,
        _EV_TIMEOUT,
        _QUEUED,
        _RUNNING,
        _Attempt,
        _Request,
        FaultSchedule,
        FaultyServingResult,
    )
    from .metrics import SLA

    if offered_qps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    faults = faults or FaultSchedule.zero()
    sla = sla or SLA(deadline_s=10.0 * router._base_service_s, percentile=0.99)
    policy = router.policy
    num_machines = router.num_machines
    rng = np.random.default_rng(router.seed)

    overload = router.overload
    admission = overload.admission if overload is not None else None
    expected_service_s = router._base_service_s
    codels = (
        [admission.make_codel() for _ in range(num_machines)]
        if admission is not None
        else None
    )
    breakers = (
        [CircuitBreaker(overload.breaker) for _ in range(num_machines)]
        if overload is not None and overload.breaker is not None
        else None
    )
    brownout = (
        BrownoutController(overload.brownout)
        if overload is not None and overload.brownout is not None
        else None
    )
    ovl_stats = OverloadStats() if overload is not None else None
    if ovl_stats is not None and brownout is not None:
        ovl_stats.completions_by_tier = [0] * overload.brownout.num_tiers

    requests: list = []
    attempts: list = []
    up = [True] * num_machines
    admitted_flags = [True] * num_machines
    running: list[int | None] = [None] * num_machines
    queues: list[deque] = [deque() for _ in range(num_machines)]
    rr_state = [0]

    # Incremental fleet aggregates (the reference recomputes these with
    # O(M) scans at every event):
    #   depth[m]        == queue_len(m) = len(queues[m]) + (running[m] is not None)
    #   live_waiting[m] == waiting_depth(m) (queued attempts still _QUEUED)
    #   adm_depth_sum   == sum(depth[m] for admitted m)   (int, exact)
    #   n_admitted      == len(candidates)
    #   tripped         == breakers not in the closed state
    depth = [0] * num_machines
    live_waiting = [0] * num_machines
    adm_depth_sum = 0
    n_admitted = num_machines
    cand_cache = list(range(num_machines))
    cand_dirty = False
    tripped = 0

    retries = hedges = wasted_attempts = fail_fasts = ejections = 0
    failed = 0
    degraded_completions = 0
    time_in_degraded_s = 0.0
    degraded_on = False
    degraded_since_s = 0.0
    latencies: list[float] = []

    tracer = router.tracer
    client_track = num_machines
    request_span: dict[int, int] = {}
    attempt_span: dict[int, int] = {}
    if tracer.enabled:
        tracer.set_track_name(client_track, "client")
        for m in range(num_machines):
            tracer.set_track_name(m, f"machine {m}")

    # ---- static event streams (pre-sorted; merged against a lazy heap) --

    n_offered = 0
    if arrival_times_s is None:
        arr_t = poisson_arrival_times(rng, offered_qps, duration_s)
        n_offered = int(arr_t.size)
        arr_ids = np.arange(n_offered, dtype=np.int64)
    else:
        raw = np.asarray(
            [float(t_s) for t_s in arrival_times_s], dtype=np.float64
        )
        if raw.size and (
            not np.all(raw >= 0.0) or not np.all(raw < duration_s)
        ):
            raise ValueError("arrival times must lie in [0, duration_s)")
        order = np.argsort(raw, kind="stable")
        arr_t = raw[order]
        arr_ids = order.astype(np.int64)
        n_offered = int(raw.size)
        for t_s in raw:
            requests.append(_Request(arrival_s=float(t_s)))
    if arrival_times_s is None:
        for t_s in arr_t:
            requests.append(_Request(arrival_s=float(t_s)))
    arr_t_list: list[float] = arr_t.tolist()
    arr_id_list: list[int] = arr_ids.tolist()

    transitions = faults.transition_events(num_machines)
    fault_t: list[float] = [e[0] for e in transitions]
    fault_machine: list[int] = [e[1] for e in transitions]
    fault_down: list[bool] = [e[2] for e in transitions]

    probe_ts: list[float] = []
    if policy.health_check_interval_s is not None:
        probe_t_s = policy.health_check_interval_s
        horizon_s = duration_s + 10.0 * router._base_service_s
        while probe_t_s < horizon_s:
            probe_ts.append(probe_t_s)
            probe_t_s += policy.health_check_interval_s

    # Dynamic events: (t_s, dseq, kind, a, b). All static events carry
    # lower reference seqs than any dynamic push, and within the statics
    # arrivals < faults < health probes; the <= comparisons below encode
    # exactly that tie order.
    events: list[tuple[float, int, int, int, int]] = []
    dseq = 0

    def push(t_s: float, kind: int, a: int = 0, b: int = 0) -> None:
        nonlocal dseq
        heapq.heappush(events, (t_s, dseq, kind, a, b))
        dseq += 1

    # ------------------------------------------------- incremental helpers

    def bump_depth(machine: int, delta: int) -> None:
        nonlocal adm_depth_sum
        depth[machine] += delta
        if admitted_flags[machine]:
            adm_depth_sum += delta

    def set_admitted(machine: int, value: bool) -> None:
        nonlocal n_admitted, adm_depth_sum, cand_dirty
        if admitted_flags[machine] == value:
            return
        admitted_flags[machine] = value
        cand_dirty = True
        if value:
            n_admitted += 1
            adm_depth_sum += depth[machine]
        else:
            n_admitted -= 1
            adm_depth_sum -= depth[machine]

    def candidates() -> list[int]:
        nonlocal cand_dirty, cand_cache
        if cand_dirty:
            cand_cache = [
                m for m in range(num_machines) if admitted_flags[m]
            ]
            cand_dirty = False
        return cand_cache

    def eject(machine: int) -> None:
        nonlocal ejections
        if admitted_flags[machine]:
            set_admitted(machine, False)
            ejections += 1

    def shed(reason: str, machine: int, now_s: float) -> None:
        assert ovl_stats is not None
        ovl_stats.count_shed(reason)
        if tracer.enabled:
            tracer.instant(
                "serving.overload.shed", now_s, track=machine, reason=reason
            )

    def breaker_failure(machine: int, now_s: float) -> None:
        nonlocal tripped
        if breakers is None:
            return
        before = breakers[machine].state
        breakers[machine].record_failure(now_s)
        after = breakers[machine].state
        if before != after:
            if (before == BREAKER_CLOSED) != (after == BREAKER_CLOSED):
                tripped += 1 if before == BREAKER_CLOSED else -1
            if tracer.enabled:
                tracer.instant(f"serving.breaker.{after}", now_s, track=machine)

    def breaker_success(machine: int, now_s: float) -> None:
        nonlocal tripped
        if breakers is None:
            return
        before = breakers[machine].state
        breakers[machine].record_success(now_s)
        after = breakers[machine].state
        if before != after:
            if (before == BREAKER_CLOSED) != (after == BREAKER_CLOSED):
                tripped += 1 if before == BREAKER_CLOSED else -1
            if tracer.enabled:
                tracer.instant(f"serving.breaker.{after}", now_s, track=machine)

    def degraded_now(now_s: float) -> bool:
        nonlocal degraded_on, degraded_since_s, time_in_degraded_s
        if router.degradation is None:
            return False
        healthy_frac = n_admitted / num_machines
        mean_depth = (
            adm_depth_sum / n_admitted if n_admitted else float("inf")
        )
        on = (
            healthy_frac < router.degradation.min_healthy_fraction
            or mean_depth >= router.degradation.queue_depth_trigger
        )
        if on and not degraded_on:
            degraded_since_s = now_s
        elif not on and degraded_on:
            time_in_degraded_s += now_s - degraded_since_s
        degraded_on = on
        return on

    def start_next(machine: int, now_s: float) -> None:
        if running[machine] is not None or not up[machine]:
            return
        queue = queues[machine]
        while queue:
            attempt_id = queue.popleft()
            bump_depth(machine, -1)
            attempt = attempts[attempt_id]
            request = requests[attempt.request_id]
            if attempt.state != _QUEUED or request.done or request.failed:
                if attempt.state == _QUEUED:
                    attempt.state = _CANCELLED
                    request.live_attempts -= 1
                    live_waiting[machine] -= 1
                    if tracer.enabled and attempt_id in attempt_span:
                        tracer.end(
                            attempt_span.pop(attempt_id),
                            now_s,
                            outcome="cancelled",
                        )
                continue
            if codels is not None and codels[machine] is not None:
                sojourn_s = now_s - attempt.enqueued_s
                if codels[machine].on_dequeue(sojourn_s, now_s):
                    attempt.state = _CANCELLED
                    request.live_attempts -= 1
                    live_waiting[machine] -= 1
                    shed(SHED_CODEL, machine, now_s)
                    if tracer.enabled and attempt_id in attempt_span:
                        tracer.end(
                            attempt_span.pop(attempt_id),
                            now_s,
                            outcome="shed",
                        )
                    attempt_failed(attempt.request_id, now_s)
                    continue
            attempt.state = _RUNNING
            running[machine] = attempt_id
            bump_depth(machine, 1)
            live_waiting[machine] -= 1
            base_s = (
                router._degraded_service_s
                if request.degraded
                else router._tier_service_s[request.tier]
            )
            multiplier = faults.service_multiplier(
                machine, now_s, router._memory_fraction
            )
            sigma = SERVICE_NOISE_SIGMA
            service_s = (
                base_s
                * multiplier
                * float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
            )
            push(now_s + service_s, _EV_COMPLETE, attempt_id, machine)
            return

    def route_attempt(request_id: int, now_s: float) -> None:
        nonlocal fail_fasts
        request = requests[request_id]
        if request.done or request.failed:
            return
        if ovl_stats is not None:
            ovl_stats.offered += 1
        cands = candidates()
        if breakers is not None and cands:
            if tripped:
                closed_list = [
                    m for m in cands if breakers[m].allows(now_s)
                ]
                if not closed_list:
                    ovl_stats.breaker_rejections += 1
                    attempt_failed(request_id, now_s)
                    return
                cands = closed_list
            # else: every breaker is closed and allows() is pure — skip.
        if not cands:
            attempt_failed(request_id, now_s)
            return
        machine = pick_machine(
            router.routing, rng, depth, rr_state, candidates=cands
        )
        if not up[machine]:
            fail_fasts += 1
            eject(machine)
            breaker_failure(machine, now_s)
            if tracer.enabled:
                tracer.instant("serving.router.failfast", now_s, track=machine)
            attempt_failed(request_id, now_s)
            return
        if admission is not None:
            waiting = live_waiting[machine]
            if admission.shed_policy == "deadline_aware":
                wait_s = (
                    waiting + (running[machine] is not None)
                ) * expected_service_s
                projected_s = (
                    now_s + wait_s + expected_service_s - request.arrival_s
                )
                if projected_s > admission.deadline_s:
                    shed(SHED_DEADLINE, machine, now_s)
                    attempt_failed(request_id, now_s)
                    return
            if waiting >= admission.queue_capacity:
                if admission.shed_policy == "reject_oldest":
                    victim_id = next(
                        (
                            aid
                            for aid in queues[machine]
                            if attempts[aid].state == _QUEUED
                        ),
                        None,
                    )
                    if victim_id is not None:
                        queues[machine].remove(victim_id)
                        bump_depth(machine, -1)
                        victim = attempts[victim_id]
                        victim.state = _CANCELLED
                        live_waiting[machine] -= 1
                        requests[victim.request_id].live_attempts -= 1
                        shed(SHED_OLDEST, machine, now_s)
                        if tracer.enabled and victim_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(victim_id),
                                now_s,
                                outcome="shed",
                            )
                        attempt_failed(victim.request_id, now_s)
                else:
                    shed(SHED_QUEUE_FULL, machine, now_s)
                    attempt_failed(request_id, now_s)
                    return
        if breakers is not None:
            breakers[machine].note_probe()
        attempt = _Attempt(request_id, machine, now_s)
        attempt_id = len(attempts)
        attempts.append(attempt)
        request.live_attempts += 1
        queues[machine].append(attempt_id)
        bump_depth(machine, 1)
        live_waiting[machine] += 1
        if ovl_stats is not None:
            ovl_stats.admitted += 1
            if live_waiting[machine] > ovl_stats.max_queue_depth:
                ovl_stats.max_queue_depth = live_waiting[machine]
        if tracer.enabled:
            attempt_span[attempt_id] = tracer.begin(
                "serving.router.attempt",
                now_s,
                parent_id=request_span.get(request_id),
                track=machine,
            )
        if policy.timeout_s is not None:
            push(now_s + policy.timeout_s, _EV_TIMEOUT, attempt_id)
        start_next(machine, now_s)

    def attempt_failed(request_id: int, now_s: float) -> None:
        nonlocal retries, failed
        request = requests[request_id]
        if request.done or request.failed or request.live_attempts > 0:
            return  # a hedge twin is still in flight
        if request.retries_used < policy.max_retries:
            delay_s = policy.backoff_s(request.retries_used)
            request.retries_used += 1
            retries += 1
            if tracer.enabled:
                tracer.instant(
                    "serving.router.retry",
                    now_s,
                    track=client_track,
                    attempt=request.retries_used,
                )
            push(now_s + delay_s, _EV_ARRIVAL, request_id, 1)
        else:
            request.failed = True
            failed += 1
            if tracer.enabled and request_id in request_span:
                tracer.end(
                    request_span.pop(request_id), now_s, outcome="failed"
                )

    # ----------------------------------------------------- merged event loop

    inf = float("inf")
    ai = fi = hi = 0
    n_arr = len(arr_t_list)
    n_fault = len(fault_t)
    n_probe = len(probe_ts)
    now_s = 0.0
    while True:
        if ai >= n_arr and fi >= n_fault and hi >= n_probe and not events:
            break
        t_a = arr_t_list[ai] if ai < n_arr else inf
        t_f = fault_t[fi] if fi < n_fault else inf
        t_h = probe_ts[hi] if hi < n_probe else inf
        t_d = events[0][0] if events else inf
        if t_a <= t_f and t_a <= t_h and t_a <= t_d:
            now_s = t_a
            request_id = arr_id_list[ai]
            ai += 1
            kind, a, b = _EV_ARRIVAL, request_id, 0
        elif t_f <= t_h and t_f <= t_d:
            now_s = t_f
            kind, a, b = _EV_FAULT_LOCAL, fault_machine[fi], int(fault_down[fi])
            fi += 1
        elif t_h <= t_d:
            now_s = t_h
            hi += 1
            kind, a, b = _EV_HEALTH_LOCAL, 0, 0
        elif events:
            now_s, _, kind, a, b = heapq.heappop(events)
        else:
            break

        if kind == _EV_ARRIVAL:
            request_id, is_retry = a, bool(b)
            request = requests[request_id]
            if request.done or request.failed:
                continue
            if not is_retry:
                if brownout is not None:
                    pressure = (
                        adm_depth_sum / n_admitted
                        if n_admitted
                        else float("inf")
                    )
                    before_tier = brownout.tier
                    request.tier = brownout.update(now_s, pressure)
                    if brownout.tier != before_tier:
                        if tracer.enabled:
                            tracer.instant(
                                "serving.brownout.step",
                                now_s,
                                track=client_track,
                                tier=brownout.tier,
                            )
                        if (
                            ovl_stats is not None
                            and brownout.tier > ovl_stats.max_brownout_tier
                        ):
                            ovl_stats.max_brownout_tier = brownout.tier
                request.degraded = degraded_now(now_s)
                if tracer.enabled:
                    request_span[request_id] = tracer.begin(
                        "serving.router.request",
                        now_s,
                        track=client_track,
                        degraded=request.degraded,
                    )
            if not is_retry and policy.hedge_delay_s is not None:
                push(now_s + policy.hedge_delay_s, _EV_HEDGE, request_id)
            route_attempt(request_id, now_s)

        elif kind == _EV_COMPLETE:
            attempt_id, machine = a, b
            attempt = attempts[attempt_id]
            if running[machine] != attempt_id:
                continue  # killed by a crash; the restart superseded it
            running[machine] = None
            bump_depth(machine, -1)
            breaker_success(machine, now_s)
            if attempt.state == _CANCELLED:
                wasted_attempts += 1
                start_next(machine, now_s)
                continue
            attempt.state = _DONE
            request = requests[attempt.request_id]
            request.live_attempts -= 1
            if request.done or request.failed:
                wasted_attempts += 1
                if tracer.enabled and attempt_id in attempt_span:
                    tracer.end(
                        attempt_span.pop(attempt_id), now_s, outcome="wasted"
                    )
            else:
                request.done = True
                request.latency_s = now_s - request.arrival_s
                latencies.append(request.latency_s)
                if ovl_stats is not None and brownout is not None:
                    ovl_stats.completions_by_tier[request.tier] += 1
                if request.degraded:
                    degraded_completions += 1
                if tracer.enabled:
                    if attempt_id in attempt_span:
                        tracer.end(
                            attempt_span.pop(attempt_id), now_s, outcome="ok"
                        )
                    if attempt.request_id in request_span:
                        tracer.end(
                            request_span.pop(attempt.request_id),
                            now_s,
                            outcome="ok",
                        )
            start_next(machine, now_s)

        elif kind == _EV_TIMEOUT:
            attempt_id = a
            attempt = attempts[attempt_id]
            request = requests[attempt.request_id]
            if (
                request.done
                or request.failed
                or attempt.state in (_CANCELLED, _DONE)
            ):
                continue
            breaker_failure(attempt.machine, now_s)
            was_queued = attempt.state == _QUEUED
            attempt.state = _CANCELLED
            request.live_attempts -= 1
            if was_queued:
                live_waiting[attempt.machine] -= 1
            if tracer.enabled:
                tracer.instant(
                    "serving.router.timeout", now_s, track=attempt.machine
                )
                if attempt_id in attempt_span:
                    tracer.end(
                        attempt_span.pop(attempt_id), now_s, outcome="timeout"
                    )
            attempt_failed(attempt.request_id, now_s)

        elif kind == _EV_HEDGE:
            request_id = a
            request = requests[request_id]
            if request.done or request.failed or request.live_attempts == 0:
                continue
            hedges += 1
            request.hedged = True
            if tracer.enabled:
                tracer.instant(
                    "serving.router.hedge", now_s, track=client_track
                )
            route_attempt(request_id, now_s)

        elif kind == _EV_FAULT_LOCAL:
            machine, goes_down = a, bool(b)
            if goes_down:
                up[machine] = False
                breaker_failure(machine, now_s)
                if tracer.enabled:
                    tracer.instant("serving.router.crash", now_s, track=machine)
                if policy.health_check_interval_s is None:
                    eject(machine)
                attempt_id = running[machine]
                if attempt_id is not None:
                    running[machine] = None
                    bump_depth(machine, -1)
                    attempt = attempts[attempt_id]
                    if attempt.state == _RUNNING:
                        attempt.state = _CANCELLED
                        requests[attempt.request_id].live_attempts -= 1
                        if tracer.enabled and attempt_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(attempt_id),
                                now_s,
                                outcome="killed",
                            )
                        attempt_failed(attempt.request_id, now_s)
                dead = queues[machine]
                queues[machine] = deque()
                bump_depth(machine, -len(dead))
                live_waiting[machine] = 0
                for attempt_id in dead:
                    attempt = attempts[attempt_id]
                    if attempt.state == _QUEUED:
                        attempt.state = _CANCELLED
                        requests[attempt.request_id].live_attempts -= 1
                        if tracer.enabled and attempt_id in attempt_span:
                            tracer.end(
                                attempt_span.pop(attempt_id),
                                now_s,
                                outcome="reset",
                            )
                        attempt_failed(attempt.request_id, now_s)
            else:
                up[machine] = True
                if tracer.enabled:
                    tracer.instant(
                        "serving.router.restart", now_s, track=machine
                    )
                if policy.health_check_interval_s is None:
                    set_admitted(machine, True)

        else:  # _EV_HEALTH_LOCAL
            for machine in range(num_machines):
                set_admitted(machine, up[machine])

    if degraded_on:
        time_in_degraded_s += duration_s - degraded_since_s
    if ovl_stats is not None:
        if brownout is not None:
            brownout.finish(duration_s)
            ovl_stats.brownout_switches = brownout.switches
            ovl_stats.time_in_tier_s = list(brownout.time_in_tier_s)
        if breakers is not None:
            ovl_stats.breaker_opens = sum(b.opens for b in breakers)
    if tracer.enabled and tracer.open_spans():
        tracer.close_all(max(now_s, duration_s), outcome="unresolved")
    if router.metrics is not None:
        router._record_metrics(
            n_offered=n_offered,
            completed=len(latencies),
            failed=failed,
            retries=retries,
            hedges=hedges,
            wasted_attempts=wasted_attempts,
            fail_fasts=fail_fasts,
            ejections=ejections,
            degraded_completions=degraded_completions,
            time_in_degraded_s=time_in_degraded_s,
            latencies=latencies,
            overload_stats=ovl_stats,
        )
    return FaultyServingResult(
        policy=policy,
        num_machines=num_machines,
        offered_qps=offered_qps,
        duration_s=duration_s,
        sla=sla,
        latencies_s=np.asarray(latencies, dtype=np.float64),
        offered=n_offered,
        failed=failed,
        retries=retries,
        hedges=hedges,
        wasted_attempts=wasted_attempts,
        fail_fasts=fail_fasts,
        ejections=ejections,
        degraded_completions=degraded_completions,
        time_in_degraded_s=time_in_degraded_s,
        quality=router._quality,
        overload=ovl_stats,
        brownout_quality=(
            router._brownout_quality if brownout is not None else None
        ),
    )
