"""Ranking-quality metrics for the filtering → ranking pipeline.

The Figure-6 hierarchy trades accuracy for latency: lightweight filtering
may drop posts the heavyweight ranker would have surfaced. These metrics
quantify that cost against a ground-truth ordering (in our synthetic
setting, the teacher model of
:class:`~repro.data.synthetic_ctr.SyntheticCtrDataset`):

* recall@k — fraction of the true top-k the pipeline returned;
* NDCG@k — position-discounted gain of the returned list.
"""

from __future__ import annotations

import numpy as np


def recall_at_k(returned: list[int], true_ranking: list[int], k: int) -> float:
    """Fraction of the true top-``k`` items present in ``returned``."""
    if k < 1:
        raise ValueError("k must be positive")
    if len(true_ranking) < k:
        raise ValueError("true ranking shorter than k")
    top = set(true_ranking[:k])
    return len(top.intersection(returned)) / k


def ndcg_at_k(
    returned: list[int], relevance: dict[int, float], k: int
) -> float:
    """Normalized discounted cumulative gain of the returned list.

    ``relevance`` maps item ids to non-negative gains; the ideal ordering
    is by descending relevance.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if any(g < 0 for g in relevance.values()):
        raise ValueError("relevance gains must be non-negative")
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    gains = np.array(
        [relevance.get(item, 0.0) for item in returned[:k]], dtype=np.float64
    )
    if gains.size < k:
        gains = np.pad(gains, (0, k - gains.size))
    dcg = float((gains * discounts).sum())
    ideal = np.sort(np.array(list(relevance.values()), dtype=np.float64))[::-1][:k]
    if ideal.size < k:
        ideal = np.pad(ideal, (0, k - ideal.size))
    idcg = float((ideal * discounts).sum())
    return dcg / idcg if idcg > 0 else 0.0


def pipeline_quality(
    selected: list[int],
    true_scores: np.ndarray,
    k: int,
) -> dict[str, float]:
    """Recall@k and NDCG@k of a pipeline's selection vs true scores.

    Args:
        selected: candidate indices the pipeline returned (best first).
        true_scores: ground-truth score per candidate index.
        k: evaluation depth.
    """
    true_scores = np.asarray(true_scores, dtype=np.float64)
    true_ranking = list(np.argsort(true_scores)[::-1])
    floor = true_scores.min()
    relevance = {i: float(s - floor) for i, s in enumerate(true_scores)}
    return {
        "recall_at_k": recall_at_k(selected, true_ranking, k),
        "ndcg_at_k": ndcg_at_k(selected, relevance, k),
    }
