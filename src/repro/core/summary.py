"""Model summaries: per-operator tables and the Figure-3 diagram.

`model_summary` is the torchsummary-style view — one row per operator with
output shape, parameters, FLOPs and bytes at a given batch size.
`architecture_diagram` renders the paper's Figure-3 topology for any
configuration, which doubles as living documentation of what a config
means.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..config.model_config import ModelConfig
from .graph import config_ops


def _output_dim(config: ModelConfig, name: str) -> str:
    """Best-effort output width of a named op in the abstract graph."""
    if name.startswith("bottom:") or name.startswith("top:"):
        prefix, rest = name.split(":")
        mlp = config.bottom_mlp if prefix == "bottom" else config.top_mlp
        index = int("".join(ch for ch in rest if ch.isdigit()))
        return str(mlp.layer_sizes[index])
    if name.startswith("emb"):
        table_idx = int(name[3 : name.index(":")])
        return str(config.embedding_tables[table_idx].dim)
    if name == "interaction":
        v = config.num_interaction_vectors
        return str(v * (v - 1) // 2)
    if name == "concat":
        return str(config.top_mlp_input_dim)
    return "-"


def model_summary(config: ModelConfig, batch_size: int = 1) -> str:
    """Per-operator summary table for one configuration."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    rows = []
    total_params = 0
    total_flops = 0
    for spec in config_ops(config):
        params = spec.weight_bytes // 4
        flops = batch_size * spec.flops_per_sample
        total_params += params
        total_flops += flops
        rows.append(
            [
                spec.name,
                spec.op_type,
                _output_dim(config, spec.name),
                f"{params:,}",
                f"{flops:,}",
            ]
        )
    table = format_table(
        ["operator", "type", "out dim", "params", f"FLOPs @b{batch_size}"],
        rows,
        title=f"{config.name} ({config.model_class})",
    )
    footer = (
        f"total: {total_params:,} parameters "
        f"({config.total_storage_bytes() / 1e6:,.1f} MB), "
        f"{total_flops:,} FLOPs at batch {batch_size}"
    )
    return f"{table}\n{footer}"


def architecture_diagram(config: ModelConfig) -> str:
    """ASCII rendering of the Figure-3 model topology."""
    bottom = "-".join(str(w) for w in config.bottom_mlp.layer_sizes)
    top = "-".join(str(w) for w in config.top_mlp.layer_sizes)
    tables = config.embedding_tables
    if len({(t.rows, t.dim, t.lookups_per_sample) for t in tables}) == 1:
        t = tables[0]
        table_line = (
            f"{len(tables)} x [{t.rows:,} rows x {t.dim}] "
            f"({t.lookups_per_sample} lookups each)"
        )
    else:
        table_line = ", ".join(
            f"[{t.rows:,}x{t.dim}/{t.lookups_per_sample}]" for t in tables
        )
    combine = (
        "dot-interaction (BatchMM) + concat"
        if config.interaction == "dot"
        else "concat"
    )
    lines = [
        f"                 CTR (sigmoid)",
        f"                      ^",
        f"              Top-MLP [{top}]",
        f"                      ^",
        f"          {combine} -> width {config.top_mlp_input_dim}",
        f"              ^                ^",
        f"  Bottom-MLP [{bottom}]   SparseLengthsSum",
        f"              ^                ^",
        f"   dense [{config.dense_features}]        embedding tables:",
        f"                          {table_line}",
        f"                               ^",
        f"                        sparse IDs ({config.total_lookups}/sample)",
    ]
    return "\n".join(lines)
