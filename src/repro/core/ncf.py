"""Neural Collaborative Filtering (NCF) — the MLPerf baseline (Section VII).

The paper contrasts production RMC models against MLPerf-NCF and finds the
public benchmark unrepresentative: orders of magnitude smaller embedding
tables (MovieLens-20m), one lookup per table, and FC-dominated execution
(>90% of NCF time is FC, versus ~80% SLS for batched RMC1/RMC2). This module
implements NeuMF (GMF branch x MLP branch) so Figure 12's comparison and the
operator-mix contrast are computed from a real model.
"""

from __future__ import annotations

import numpy as np

from .operators import (
    Activation,
    Concat,
    EmbeddingTable,
    FullyConnected,
    SparseBatch,
    SparseLengthsSum,
)
from .operators.base import Operator, OperatorCost, sum_costs
from .profiler import Profile, Profiler


class NCFModel:
    """NeuMF: GMF (element-wise product of embeddings) + MLP tower.

    Args:
        num_users: user-table rows (MovieLens-20m: ~138k).
        num_items: item-table rows (MovieLens-20m: ~27k).
        embedding_dim: shared embedding dimension (MLPerf uses 64).
        mlp_layers: hidden widths of the MLP tower.
        rng: parameter-initialization generator.
    """

    def __init__(
        self,
        num_users: int = 138_000,
        num_items: int = 27_000,
        embedding_dim: int = 64,
        mlp_layers: tuple[int, ...] = (128, 64, 32),
        rng: np.random.Generator | None = None,
    ) -> None:
        if min(num_users, num_items, embedding_dim) < 1 or not mlp_layers:
            raise ValueError("NCF parameters must be positive / non-empty")
        rng = rng or np.random.default_rng(2020)
        self.embedding_dim = embedding_dim

        self.user_table = EmbeddingTable(num_users, embedding_dim, rng=rng)
        self.item_table = EmbeddingTable(num_items, embedding_dim, rng=rng)
        self.user_lookup = SparseLengthsSum("ncf:user", self.user_table, 1)
        self.item_lookup = SparseLengthsSum("ncf:item", self.item_table, 1)

        self.mlp_concat = Concat("ncf:concat", [embedding_dim, embedding_dim])
        self.mlp_ops: list[Operator] = []
        fan_in = 2 * embedding_dim
        for i, width in enumerate(mlp_layers):
            self.mlp_ops.append(FullyConnected(f"ncf:mlp{i}", fan_in, width, rng=rng))
            self.mlp_ops.append(Activation(f"ncf:relu{i}", "relu", width))
            fan_in = width
        # NeuMF head: concat(GMF vector, MLP output) -> 1 logit -> sigmoid.
        self.head_concat = Concat("ncf:head_concat", [embedding_dim, fan_in])
        self.head = FullyConnected("ncf:head", embedding_dim + fan_in, 1, rng=rng)
        self.head_act = Activation("ncf:sigmoid", "sigmoid", 1)

    def operators(self) -> list[Operator]:
        """All operators in execution order."""
        return [
            self.user_lookup,
            self.item_lookup,
            self.mlp_concat,
            *self.mlp_ops,
            self.head_concat,
            self.head,
            self.head_act,
        ]

    def storage_bytes(self) -> int:
        """Resident parameter bytes (tables + FC weights)."""
        return sum(op.parameter_bytes() for op in self.operators())

    def cost(self, batch_size: int) -> OperatorCost:
        """Aggregate analytical cost of one forward pass."""
        total = sum_costs(op.cost(batch_size) for op in self.operators())
        # Element-wise GMF product: one FLOP per embedding element.
        gmf = OperatorCost(
            flops=batch_size * self.embedding_dim,
            bytes_read=2 * batch_size * self.embedding_dim * 4,
            bytes_written=batch_size * self.embedding_dim * 4,
        )
        return total + gmf

    def forward(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predict interaction probability for ``(users[k], items[k])`` pairs."""
        out, _ = self._forward(users, items, profiler=None)
        return out

    def forward_profiled(
        self, users: np.ndarray, items: np.ndarray
    ) -> tuple[np.ndarray, Profile]:
        """Forward pass with per-operator timing."""
        profiler = Profiler()
        out, _ = self._forward(users, items, profiler=profiler)
        return out, profiler.reset()

    def _forward(self, users, items, profiler: Profiler | None):
        users = np.asarray(users, dtype=np.int64).reshape(-1)
        items = np.asarray(items, dtype=np.int64).reshape(-1)
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        batch = users.shape[0]
        ones = np.ones(batch, dtype=np.int64)
        user_batch = SparseBatch(ids=users, lengths=ones)
        item_batch = SparseBatch(ids=items, lengths=ones)

        def run(op: Operator, *inputs):
            if profiler is not None:
                return profiler.run(op, batch, *inputs)
            return op.forward(*inputs)

        user_vec = run(self.user_lookup, user_batch)
        item_vec = run(self.item_lookup, item_batch)

        gmf = user_vec * item_vec
        x = run(self.mlp_concat, user_vec, item_vec)
        for op in self.mlp_ops:
            x = run(op, x)
        combined = run(self.head_concat, gmf, x)
        logit = run(self.head, combined)
        prob = run(self.head_act, logit)
        return prob.reshape(-1), None
