"""Workload-level statistics: the Figure 2 / Figure 12 characterization.

Computes per-inference FLOPs, bytes and storage for recommendation models
and for the CNN/RNN/NCF comparison points, entirely from configs and
operator cost models (no execution needed), so production-scale
configurations can be characterized without allocating their tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from .operators.reference import Conv2D, RecurrentCell


@dataclass(frozen=True)
class WorkloadPoint:
    """One point in the Figure-2 compute/memory plane."""

    name: str
    category: str  # "RMC", "NCF", "CNN", "RNN"
    flops: int
    bytes_read: int
    storage_bytes: int

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte read."""
        return self.flops / self.bytes_read if self.bytes_read else float("inf")


def workload_point(config: ModelConfig) -> WorkloadPoint:
    """Characterize a recommendation-model config at unit batch."""
    category = "NCF" if config.model_class == "NCF" else "RMC"
    return WorkloadPoint(
        name=config.name,
        category=category,
        flops=config.flops_per_sample(),
        bytes_read=config.bytes_read_per_sample(),
        storage_bytes=config.total_storage_bytes(),
    )


# Full-network reference points, assembled from per-layer cost models so the
# numbers are derived rather than quoted. Shapes follow the paper's Figure 2
# comparison set.


def resnet50_point() -> WorkloadPoint:
    """ResNet50-scale CNN: ~4 GFLOPs per image, ~25M parameters."""
    # Approximate the network as its dominant conv stages.
    stages = [
        Conv2D("conv2", 64, 64, 3, 56) for _ in range(6)
    ] + [
        Conv2D("conv3", 128, 128, 3, 28) for _ in range(8)
    ] + [
        Conv2D("conv4", 256, 256, 3, 14) for _ in range(12)
    ] + [
        Conv2D("conv5", 512, 512, 3, 7) for _ in range(6)
    ]
    flops = sum(s.cost(1).flops for s in stages)
    bytes_read = sum(s.cost(1).bytes_read for s in stages)
    storage = sum(s.parameter_bytes() for s in stages)
    return WorkloadPoint("ResNet50", "CNN", flops, bytes_read, storage)


def rnn_translation_point() -> WorkloadPoint:
    """GNMT/DeepSpeech2-scale recurrent network: stacked wide RNN layers."""
    layers = [RecurrentCell(f"rnn{i}", 1024, 1024, 50) for i in range(4)]
    flops = sum(layer.cost(1).flops for layer in layers)
    bytes_read = sum(layer.cost(1).bytes_read for layer in layers)
    storage = sum(layer.parameter_bytes() for layer in layers)
    return WorkloadPoint("GNMT-RNN", "RNN", flops, bytes_read, storage)


def figure2_points(configs: list[ModelConfig]) -> list[WorkloadPoint]:
    """The full Figure-2 comparison set: given RMC/NCF configs + CNN/RNN."""
    points = [workload_point(cfg) for cfg in configs]
    points.append(resnet50_point())
    points.append(rnn_translation_point())
    return points
