"""Element-wise activation operators (ReLU, Sigmoid).

Activations are the "Activ." slice of the paper's Figure 4 cycle breakdown:
one FLOP-ish per element, streaming access, never a bottleneck but part of
the "Rest" time in co-location studies (Figure 9).
"""

from __future__ import annotations

import numpy as np

from .base import Operator, OperatorCost, OP_ACTIVATION

_FP32 = 4


class Activation(Operator):
    """Element-wise non-linearity over a ``(batch, dim)`` activation."""

    op_type = OP_ACTIVATION

    #: FLOPs charged per element; sigmoid's exp/division is costed higher.
    _FLOPS_PER_ELEMENT = {"relu": 1, "sigmoid": 4, "none": 0}

    def __init__(self, name: str, kind: str, dim: int) -> None:
        super().__init__(name)
        if kind not in self._FLOPS_PER_ELEMENT:
            raise ValueError(f"unsupported activation kind {kind!r}")
        if dim < 1:
            raise ValueError("activation dim must be positive")
        self.kind = kind
        self.dim = dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "relu":
            return np.maximum(x, 0.0)
        if self.kind == "sigmoid":
            # Numerically stable logistic.
            out = np.empty_like(x, dtype=np.float32)
            positive = x >= 0
            out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
            exp_x = np.exp(x[~positive])
            out[~positive] = exp_x / (1.0 + exp_x)
            return out
        return x

    def cost(self, batch_size: int) -> OperatorCost:
        elements = batch_size * self.dim
        moved = elements * _FP32
        return OperatorCost(
            flops=elements * self._FLOPS_PER_ELEMENT[self.kind],
            bytes_read=moved,
            bytes_written=moved,
        )


def relu(name: str, dim: int) -> Activation:
    """Convenience constructor for a ReLU."""
    return Activation(name, "relu", dim)


def sigmoid(name: str, dim: int) -> Activation:
    """Convenience constructor for a Sigmoid."""
    return Activation(name, "sigmoid", dim)
