"""Concat operator: joins the Bottom-MLP output with the embedding vectors.

Concat is pure data movement (zero FLOPs) yet consumes ~6.5% of RMC1's time
and a visible share of data-center cycles (Figure 4) because it touches
every activation byte once.
"""

from __future__ import annotations

import numpy as np

from .base import Operator, OperatorCost, OP_CONCAT

_FP32 = 4


class Concat(Operator):
    """Concatenate ``(batch, d_i)`` inputs along the feature axis."""

    op_type = OP_CONCAT

    def __init__(self, name: str, input_dims: list[int]) -> None:
        super().__init__(name)
        if not input_dims or any(d < 1 for d in input_dims):
            raise ValueError("Concat needs positive input dims")
        self.input_dims = list(input_dims)
        self.output_dim = sum(input_dims)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        if len(inputs) != len(self.input_dims):
            raise ValueError(
                f"{self.name}: expected {len(self.input_dims)} inputs, got {len(inputs)}"
            )
        for array, dim in zip(inputs, self.input_dims):
            if array.ndim != 2 or array.shape[1] != dim:
                raise ValueError(
                    f"{self.name}: expected (batch, {dim}), got {array.shape}"
                )
        return np.concatenate(inputs, axis=1)

    def cost(self, batch_size: int) -> OperatorCost:
        moved = batch_size * self.output_dim * _FP32
        return OperatorCost(flops=0, bytes_read=moved, bytes_written=moved)
