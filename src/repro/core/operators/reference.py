"""Reference CNN and RNN operators for cross-workload comparisons.

Figures 2, 4 and 5 of the paper contrast recommendation models against
convolutional and recurrent networks (ResNet50-style Conv layers, NLP-style
recurrent cells). These operators provide executable layers with the same
cost/trace interface so the comparisons are computed, not hard-coded:
a Conv layer re-reads its small filter set across many spatial positions
(141 FLOPs/byte, ~0.06 MPKI) while a recurrent cell streams its recurrent
weights every timestep (5.5 FLOPs/byte, ~0.5 MPKI).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import MemoryAccess, Operator, OperatorCost, OP_CONV, OP_RECURRENT

_FP32 = 4


class Conv2D(Operator):
    """A 2-D convolution (NCHW, no padding groups) executed via im2col.

    Defaults approximate a mid-network ResNet50 block: 3x3 over 56x56x64.
    """

    op_type = OP_CONV

    def __init__(
        self,
        name: str,
        in_channels: int = 64,
        out_channels: int = 64,
        kernel_size: int = 3,
        spatial: int = 56,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, spatial, stride) < 1:
            raise ValueError("Conv2D parameters must be positive")
        if kernel_size > spatial:
            raise ValueError("kernel cannot exceed the spatial extent")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.spatial = spatial
        self.stride = stride
        self.out_spatial = (spatial - kernel_size) // stride + 1
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, fan_in)
        ).astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        expected = (self.in_channels, self.spatial, self.spatial)
        if x.ndim != 4 or x.shape[1:] != expected:
            raise ValueError(f"{self.name}: expected (batch, {expected}), got {x.shape}")
        batch = x.shape[0]
        k, s, out = self.kernel_size, self.stride, self.out_spatial
        # im2col: gather every receptive field into a column.
        cols = np.empty(
            (batch, self.in_channels * k * k, out * out), dtype=np.float32
        )
        col = 0
        for i in range(out):
            for j in range(out):
                patch = x[:, :, i * s : i * s + k, j * s : j * s + k]
                cols[:, :, col] = patch.reshape(batch, -1)
                col += 1
        result = np.matmul(self.weight[None, :, :], cols)
        return result.reshape(batch, self.out_channels, out, out)

    def parameter_bytes(self) -> int:
        return self.weight.size * _FP32

    def cost(self, batch_size: int) -> OperatorCost:
        positions = self.out_spatial * self.out_spatial
        macs = (
            batch_size
            * positions
            * self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )
        in_bytes = batch_size * self.in_channels * self.spatial * self.spatial * _FP32
        out_bytes = batch_size * self.out_channels * positions * _FP32
        return OperatorCost(
            flops=2 * macs,
            bytes_read=self.parameter_bytes() + in_bytes,
            bytes_written=out_bytes,
        )

    def address_trace(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[MemoryAccess]:
        """Small filter set re-read per invocation plus the input feature
        map, which in a CNN comes hot from the previous layer (fixed region,
        cache-resident) — the source of conv's near-zero LLC miss rate."""
        del rng
        yield MemoryAccess(address=0, size=self.parameter_bytes())
        in_bytes = (
            batch_size * self.in_channels * self.spatial * self.spatial * _FP32
        )
        base = Operator._ACTIVATION_REGION
        yield MemoryAccess(address=base, size=in_bytes)
        yield MemoryAccess(address=base + in_bytes, size=in_bytes, is_write=True)


class RecurrentCell(Operator):
    """An Elman-style recurrent layer unrolled over ``timesteps``.

    Sized after the recurrent layers in production NLP models the paper
    compares against (hidden dimension ~1-2K, tens of timesteps). The
    recurrent weight matrix is re-streamed on every timestep, which is what
    pushes its intensity well below an FC of the same shape.
    """

    op_type = OP_RECURRENT

    def __init__(
        self,
        name: str,
        input_dim: int = 512,
        hidden_dim: int = 1024,
        timesteps: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if min(input_dim, hidden_dim, timesteps) < 1:
            raise ValueError("RecurrentCell parameters must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.timesteps = timesteps
        rng = rng or np.random.default_rng(0)
        self.w_input = rng.normal(
            0.0, np.sqrt(1.0 / input_dim), size=(input_dim, hidden_dim)
        ).astype(np.float32)
        self.w_hidden = rng.normal(
            0.0, np.sqrt(1.0 / hidden_dim), size=(hidden_dim, hidden_dim)
        ).astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        expected = (self.timesteps, self.input_dim)
        if x.ndim != 3 or x.shape[1:] != expected:
            raise ValueError(f"{self.name}: expected (batch, {expected}), got {x.shape}")
        batch = x.shape[0]
        hidden = np.zeros((batch, self.hidden_dim), dtype=np.float32)
        for t in range(self.timesteps):
            hidden = np.tanh(x[:, t, :] @ self.w_input + hidden @ self.w_hidden)
        return hidden

    def parameter_bytes(self) -> int:
        return (self.w_input.size + self.w_hidden.size) * _FP32

    def cost(self, batch_size: int) -> OperatorCost:
        macs_per_step = self.input_dim * self.hidden_dim + self.hidden_dim * self.hidden_dim
        flops = 2 * batch_size * self.timesteps * macs_per_step
        # Weights are re-read each timestep (no inter-step reuse in DRAM terms
        # once hidden state + weights exceed cache for production sizes).
        bytes_read = self.timesteps * self.parameter_bytes()
        bytes_read += batch_size * self.timesteps * self.input_dim * _FP32
        bytes_written = batch_size * self.hidden_dim * _FP32
        return OperatorCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written)

    def address_trace(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[MemoryAccess]:
        """Weights are re-streamed every timestep; each timestep also reads a
        fresh slice of the input sequence."""
        del rng
        weight_bytes = self.parameter_bytes()
        step_in = batch_size * self.input_dim * _FP32
        in_base = self._fresh_activation_base(self.timesteps * step_in)
        for t in range(self.timesteps):
            yield MemoryAccess(address=0, size=weight_bytes)
            yield MemoryAccess(address=in_base + t * step_in, size=step_in)
