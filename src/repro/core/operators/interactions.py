"""Feature-interaction operators (BatchMatMul).

Production ranking models compute explicit pairwise interactions between
the dense representation and every embedding vector via a batched matrix
multiply — the "BatchMatMul" operator that, together with FC, accounts for
over 96% of RMC3's runtime (Figure 7) and a visible slice of data-center
cycles (Figure 4). DLRM calls this the *dot interaction*.
"""

from __future__ import annotations

import numpy as np

from .base import Operator, OperatorCost, OP_BATCH_MATMUL

_FP32 = 4


class DotInteraction(Operator):
    """Pairwise dot products between ``num_vectors`` feature vectors.

    Input is ``(batch, num_vectors, dim)``; output is the flattened strictly
    lower triangle of the ``(num_vectors, num_vectors)`` Gram matrix computed
    per sample via a batched matmul, i.e. ``num_vectors*(num_vectors-1)/2``
    features.
    """

    op_type = OP_BATCH_MATMUL

    def __init__(self, name: str, num_vectors: int, dim: int) -> None:
        super().__init__(name)
        if num_vectors < 2:
            raise ValueError("dot interaction needs at least two feature vectors")
        if dim < 1:
            raise ValueError("interaction dim must be positive")
        self.num_vectors = num_vectors
        self.dim = dim
        self.output_dim = num_vectors * (num_vectors - 1) // 2

    def forward(self, stacked: np.ndarray) -> np.ndarray:
        if stacked.ndim != 3 or stacked.shape[1:] != (self.num_vectors, self.dim):
            raise ValueError(
                f"{self.name}: expected (batch, {self.num_vectors}, {self.dim}), "
                f"got {stacked.shape}"
            )
        gram = np.matmul(stacked, np.transpose(stacked, (0, 2, 1)))
        lower_i, lower_j = np.tril_indices(self.num_vectors, k=-1)
        return gram[:, lower_i, lower_j].astype(np.float32)

    def cost(self, batch_size: int) -> OperatorCost:
        # Full Gram matmul, as executed: V*V*dim MACs per sample.
        flops = 2 * batch_size * self.num_vectors * self.num_vectors * self.dim
        bytes_read = batch_size * self.num_vectors * self.dim * _FP32
        bytes_written = batch_size * self.output_dim * _FP32
        return OperatorCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written)
