"""Operator abstractions shared by every layer type.

Each operator knows how to (1) execute on numpy arrays, (2) report its
analytical cost — FLOPs and bytes moved — for a given batch size, and
(3) emit a memory *address trace* for the server cache simulator
(:mod:`repro.hw`). Costs and traces are what the paper's characterization
is built on; execution is used by the tests, examples and wall-clock
benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

# Operator categories, matching the paper's Figure 4 x-axis.
OP_FC = "FC"
OP_SLS = "SLS"
OP_CONCAT = "Concat"
OP_CONV = "Conv"
OP_BATCH_MATMUL = "BatchMM"
OP_ACTIVATION = "Activation"
OP_RECURRENT = "Recurrent"
OP_OTHER = "Other"

ALL_OP_TYPES = (
    OP_FC,
    OP_SLS,
    OP_CONCAT,
    OP_CONV,
    OP_BATCH_MATMUL,
    OP_ACTIVATION,
    OP_RECURRENT,
    OP_OTHER,
)


@dataclass(frozen=True)
class OperatorCost:
    """Analytical cost of one operator invocation.

    Attributes:
        flops: floating-point operations (a multiply-accumulate counts as 2).
        bytes_read: bytes of parameters + activations read.
        bytes_written: bytes of activations produced.
    """

    flops: int
    bytes_read: int
    bytes_written: int

    @property
    def total_bytes(self) -> int:
        """Total data movement."""
        return self.bytes_read + self.bytes_written

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte read — the Figure 5 compute-density metric."""
        if self.bytes_read == 0:
            return float("inf")
        return self.flops / self.bytes_read

    def __add__(self, other: "OperatorCost") -> "OperatorCost":
        return OperatorCost(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


ZERO_COST = OperatorCost(flops=0, bytes_read=0, bytes_written=0)


def sum_costs(costs: Iterable[OperatorCost]) -> OperatorCost:
    """Sum a sequence of costs (returns a zero cost for an empty input)."""
    total = ZERO_COST
    for cost in costs:
        total = total + cost
    return total


@dataclass(frozen=True)
class MemoryAccess:
    """One logical memory access in an operator's address trace.

    Addresses are byte offsets in a flat per-model address space; the cache
    simulator only cares about their locality structure, not their absolute
    placement.

    Attributes:
        address: starting byte address.
        size: bytes touched contiguously from ``address``.
        is_write: True for stores.
    """

    address: int
    size: int
    is_write: bool = False


class Operator(abc.ABC):
    """Base class for all operators.

    Subclasses set :attr:`op_type` to one of the Figure-4 categories and
    implement :meth:`forward`, :meth:`cost` and (when their access pattern
    matters to the paper's analysis) :meth:`address_trace`.
    """

    op_type: str = OP_OTHER

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        """Execute the operator on numpy inputs."""

    @abc.abstractmethod
    def cost(self, batch_size: int) -> OperatorCost:
        """Analytical cost for one invocation at ``batch_size``."""

    def parameter_bytes(self) -> int:
        """Bytes of trainable parameters held by this operator."""
        return 0

    #: Base byte address where operator activations live; successive
    #: invocations use fresh regions (streaming inputs do not repeat), which
    #: is what keeps dense operators' misses compulsory-on-inputs-only.
    _ACTIVATION_REGION = 1 << 34

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)

    def _fresh_activation_base(self, bytes_needed: int) -> int:
        epoch = getattr(self, "_trace_epoch", 0)
        self._trace_epoch = epoch + 1
        region = max(bytes_needed, 1)
        return self._ACTIVATION_REGION + epoch * (region + 4096)

    def address_trace(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[MemoryAccess]:
        """Yield the operator's memory accesses for one invocation.

        The default trace is a streaming read over the operator's
        parameters (reused across invocations → cache-resident once warm)
        plus a read/write pass over a *fresh* activation region (new inputs
        arrive every invocation → compulsory misses). Operators with
        distinctive patterns (SLS gathers, recurrent weight re-streaming)
        override this.
        """
        del rng
        params = self.parameter_bytes()
        if params:
            yield MemoryAccess(address=0, size=params)
        act_bytes = self.cost(batch_size).bytes_written
        if act_bytes:
            base = self._fresh_activation_base(2 * act_bytes)
            yield MemoryAccess(address=base, size=act_bytes)
            yield MemoryAccess(address=base + act_bytes, size=act_bytes, is_write=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
