"""Operator library: the building blocks of recommendation models."""

from .base import (
    ALL_OP_TYPES,
    MemoryAccess,
    Operator,
    OperatorCost,
    OP_ACTIVATION,
    OP_BATCH_MATMUL,
    OP_CONCAT,
    OP_CONV,
    OP_FC,
    OP_OTHER,
    OP_RECURRENT,
    OP_SLS,
    ZERO_COST,
    sum_costs,
)
from .activations import Activation, relu, sigmoid
from .concat import Concat
from .fc import FullyConnected
from .interactions import DotInteraction
from .quantized import (
    QuantizedEmbeddingTable,
    QuantizedSparseLengthsSum,
)
from .reference import Conv2D, RecurrentCell
from .sls import (
    EmbeddingTable,
    SparseBatch,
    SparseLengthsSum,
    SparseLengthsWeightedSum,
    sls_reference,
)

__all__ = [
    "ALL_OP_TYPES",
    "MemoryAccess",
    "Operator",
    "OperatorCost",
    "OP_ACTIVATION",
    "OP_BATCH_MATMUL",
    "OP_CONCAT",
    "OP_CONV",
    "OP_FC",
    "OP_OTHER",
    "OP_RECURRENT",
    "OP_SLS",
    "ZERO_COST",
    "sum_costs",
    "Activation",
    "relu",
    "sigmoid",
    "Concat",
    "FullyConnected",
    "DotInteraction",
    "QuantizedEmbeddingTable",
    "QuantizedSparseLengthsSum",
    "Conv2D",
    "RecurrentCell",
    "EmbeddingTable",
    "SparseBatch",
    "SparseLengthsSum",
    "SparseLengthsWeightedSum",
    "sls_reference",
]
