"""Embedding tables and the SparseLengthsSum (SLS) operator.

SLS is the operator that distinguishes recommendation models from CNNs and
RNNs (Section II.C): each multi-hot sparse feature is a list of
non-contiguous IDs; every ID selects one row of an embedding table and the
selected rows are summed element-wise into a single dense vector. The paper's
Algorithm 1 is implemented literally in :func:`sls_reference`; the
:class:`SparseLengthsSum` operator uses a vectorized numpy equivalent and is
tested against the reference.

SLS has very low compute intensity (0.25 FLOPs/byte) and a highly irregular
access pattern: its misses are compulsory (low row reuse), giving ~8 MPKI
LLC miss rates versus 0.2 for FC. :meth:`SparseLengthsSum.address_trace`
exposes exactly that pattern to the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .base import MemoryAccess, Operator, OperatorCost, OP_SLS

_FP32 = 4
_ID_BYTES = 8  # sparse IDs are int64


@dataclass(frozen=True)
class SparseBatch:
    """A batch of multi-hot sparse inputs for one embedding table.

    Mirrors the Caffe2 operator's (IDs, Lengths) encoding: ``ids`` is the
    concatenation of every sample's ID list and ``lengths[k]`` is the number
    of IDs belonging to sample ``k``.
    """

    ids: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        if self.ids.ndim != 1 or self.lengths.ndim != 1:
            raise ValueError("ids and lengths must be 1-D arrays")
        if int(self.lengths.sum()) != self.ids.shape[0]:
            raise ValueError(
                f"lengths sum to {int(self.lengths.sum())} but there are "
                f"{self.ids.shape[0]} ids"
            )
        if self.lengths.size and int(self.lengths.min()) < 0:
            raise ValueError("lengths must be non-negative")

    @property
    def batch_size(self) -> int:
        """Number of samples in the batch."""
        return self.lengths.shape[0]

    @property
    def total_lookups(self) -> int:
        """Total number of row gathers the batch requires."""
        return self.ids.shape[0]

    @classmethod
    def from_lists(cls, per_sample_ids: Sequence[Sequence[int]]) -> "SparseBatch":
        """Build a batch from one ID list per sample."""
        lengths = np.array([len(s) for s in per_sample_ids], dtype=np.int64)
        if lengths.sum() == 0:
            ids = np.empty(0, dtype=np.int64)
        else:
            ids = np.concatenate([np.asarray(s, dtype=np.int64) for s in per_sample_ids])
        return cls(ids=ids, lengths=lengths)


class EmbeddingTable:
    """A dense table of ``rows`` x ``dim`` fp32 embedding vectors."""

    def __init__(self, rows: int, dim: int, rng: np.random.Generator | None = None) -> None:
        if rows < 1 or dim < 1:
            raise ValueError("embedding table dimensions must be positive")
        self.rows = rows
        self.dim = dim
        rng = rng or np.random.default_rng(0)
        # Production tables are learned; uniform initialization in a small
        # range is sufficient for inference characterization.
        self.data = rng.uniform(-0.05, 0.05, size=(rows, dim)).astype(np.float32)

    def storage_bytes(self) -> int:
        """Capacity of the table in bytes."""
        return self.rows * self.dim * _FP32

    def row_address(self, row: int) -> int:
        """Byte offset of ``row`` within the table."""
        return row * self.dim * _FP32


def sls_reference(
    table: np.ndarray, lengths: Sequence[int], ids: Sequence[int]
) -> np.ndarray:
    """Literal transcription of the paper's Algorithm 1 (SLS pseudo-code).

    Used as the correctness oracle for the vectorized operator.
    """
    rows, cols = table.shape
    out = np.zeros((len(lengths), cols), dtype=np.float32)
    current_id = 0
    out_id = 0
    for length in lengths:
        for idx in ids[current_id : current_id + length]:
            emb_vector = table[idx]
            for i in range(cols):
                out[out_id][i] += emb_vector[i]
        out_id += 1
        current_id += length
    return out


class SparseLengthsWeightedSum(Operator):
    """Weighted pooled lookup (Caffe2's SparseLengthsWeightedSum).

    Like SLS, but each sparse ID carries a per-lookup fp32 weight and rows
    are accumulated as ``sum(weight_k * table[id_k])`` — used in production
    when sparse features encode interaction strength (e.g. dwell time)
    rather than mere presence.
    """

    op_type = OP_SLS

    def __init__(
        self, name: str, table: "EmbeddingTable", lookups_per_sample: int
    ) -> None:
        super().__init__(name)
        if lookups_per_sample < 1:
            raise ValueError("lookups_per_sample must be positive")
        self.table = table
        self.lookups_per_sample = lookups_per_sample

    def forward(  # type: ignore[override]
        self, batch: SparseBatch, weights: np.ndarray
    ) -> np.ndarray:
        ids = batch.ids
        weights = np.asarray(weights, dtype=np.float32).reshape(-1)
        if weights.shape[0] != ids.shape[0]:
            raise ValueError(
                f"{self.name}: {ids.shape[0]} ids but {weights.shape[0]} weights"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.table.rows):
            raise IndexError(f"{self.name}: sparse ID out of range")
        gathered = self.table.data[ids] * weights[:, None]
        out = np.zeros((batch.batch_size, self.table.dim), dtype=np.float32)
        segment = np.repeat(np.arange(batch.batch_size), batch.lengths)
        np.add.at(out, segment, gathered)
        return out

    def parameter_bytes(self) -> int:
        return self.table.storage_bytes()

    def cost(self, batch_size: int) -> OperatorCost:
        lookups = batch_size * self.lookups_per_sample
        flops = 2 * lookups * self.table.dim  # multiply + accumulate
        bytes_read = lookups * (self.table.dim * _FP32 + _ID_BYTES + _FP32)
        bytes_written = batch_size * self.table.dim * _FP32
        return OperatorCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written)


class SparseLengthsSum(Operator):
    """Pooled embedding lookup over one table (Caffe2's SparseLengthsSum).

    ``forward`` takes a :class:`SparseBatch` and returns a dense
    ``(batch, dim)`` array in which row ``k`` is the element-wise sum of the
    embedding rows selected by sample ``k``'s IDs.
    """

    op_type = OP_SLS

    def __init__(
        self, name: str, table: EmbeddingTable, lookups_per_sample: int
    ) -> None:
        super().__init__(name)
        if lookups_per_sample < 1:
            raise ValueError("lookups_per_sample must be positive")
        self.table = table
        self.lookups_per_sample = lookups_per_sample

    def forward(self, batch: SparseBatch) -> np.ndarray:  # type: ignore[override]
        ids = batch.ids
        if ids.size and (ids.min() < 0 or ids.max() >= self.table.rows):
            raise IndexError(
                f"{self.name}: sparse ID out of range [0, {self.table.rows})"
            )
        gathered = self.table.data[ids]
        out = np.zeros((batch.batch_size, self.table.dim), dtype=np.float32)
        segment = np.repeat(np.arange(batch.batch_size), batch.lengths)
        np.add.at(out, segment, gathered)
        return out

    def parameter_bytes(self) -> int:
        return self.table.storage_bytes()

    def cost(self, batch_size: int) -> OperatorCost:
        lookups = batch_size * self.lookups_per_sample
        flops = lookups * self.table.dim  # element-wise accumulation only
        bytes_read = lookups * self.table.dim * _FP32 + lookups * _ID_BYTES
        bytes_written = batch_size * self.table.dim * _FP32
        return OperatorCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written)

    # ------------------------------------------------------------ traces

    def address_trace(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[MemoryAccess]:
        """Random-row gather trace: one row-sized read per lookup.

        With no trace provided the rows are drawn uniformly, matching the
        paper's observation that production lookups have low reuse
        (compulsory-miss dominated).
        """
        rng = rng or np.random.default_rng(0)
        rows = rng.integers(
            0, self.table.rows, size=batch_size * self.lookups_per_sample
        )
        yield from self.trace_for_rows(rows)

    def trace_for_rows(self, rows: np.ndarray) -> Iterator[MemoryAccess]:
        """Trace for a concrete sequence of looked-up rows (trace-driven
        cache studies, Figure 14)."""
        row_bytes = self.table.dim * _FP32
        for row in rows:
            yield MemoryAccess(address=int(row) * row_bytes, size=row_bytes)

    def line_trace_for_rows(
        self, rows: np.ndarray, line_bytes: int = 64
    ) -> np.ndarray:
        """Cache-line indices touched by a lookup trace, as one int64 array.

        Array counterpart of :meth:`trace_for_rows` for the vectorized
        replay engine (``CacheHierarchy.access_lines``): the concatenation
        of every row read's spanned lines, in trace order, with no
        per-lookup object churn. Bit-identical to expanding the
        :class:`MemoryAccess` stream through ``lines_spanned``.
        """
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        row_bytes = self.table.dim * _FP32
        addresses = rows * row_bytes
        first = addresses // line_bytes
        last = (addresses + row_bytes - 1) // line_bytes
        counts = last - first + 1
        if counts.size == 0:
            return np.empty(0, dtype=np.int64)
        total = int(counts.sum())
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        return np.repeat(first, counts) + np.arange(total, dtype=np.int64) - bases
