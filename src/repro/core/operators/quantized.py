"""Quantized embedding tables (int8 / fp16).

The paper lists reduced-precision datatypes among the standard DNN
optimizations and notes that "a combination of aggressive compression and
novel memory technologies are needed to reduce the memory capacity
requirements" of recommendation models. Embedding tables are the natural
target: row-wise int8 quantization cuts the 10 GB-class RMC2 storage (and
every gathered byte) by ~4x at a small accuracy cost.

:class:`QuantizedEmbeddingTable` stores int8 rows with per-row scale/offset
(the standard row-wise affine scheme used for production embeddings);
:class:`QuantizedSparseLengthsSum` dequantizes on gather and pools exactly
like the fp32 operator, so outputs are directly comparable.
"""

from __future__ import annotations

import numpy as np

from .base import MemoryAccess, Operator, OperatorCost, OP_SLS
from .sls import EmbeddingTable, SparseBatch

_INT8 = 1
_SCALE_BYTES = 8  # fp32 scale + fp32 offset per row
_ID_BYTES = 8


class QuantizedEmbeddingTable:
    """Row-wise affine int8 quantization of an embedding table.

    Each row r is stored as ``q = round((x - min_r) / scale_r)`` with
    ``scale_r = (max_r - min_r) / 255``; dequantization is
    ``x ≈ q * scale_r + min_r``.
    """

    def __init__(self, source: EmbeddingTable) -> None:
        self.rows = source.rows
        self.dim = source.dim
        data = source.data
        row_min = data.min(axis=1, keepdims=True)
        row_max = data.max(axis=1, keepdims=True)
        spread = np.maximum(row_max - row_min, 1e-12)
        self.scale = (spread / 255.0).astype(np.float32)
        self.offset = row_min.astype(np.float32)
        self.data = np.clip(
            np.rint((data - self.offset) / self.scale), 0, 255
        ).astype(np.uint8)

    @classmethod
    def quantize(cls, source: EmbeddingTable) -> "QuantizedEmbeddingTable":
        """Quantize an fp32 table."""
        return cls(source)

    def storage_bytes(self) -> int:
        """int8 payload plus per-row scale/offset metadata."""
        return self.rows * (self.dim * _INT8 + _SCALE_BYTES)

    def dequantize_rows(self, ids: np.ndarray) -> np.ndarray:
        """Gather and dequantize the given rows to fp32."""
        q = self.data[ids].astype(np.float32)
        return q * self.scale[ids] + self.offset[ids]

    def max_abs_error(self, source: EmbeddingTable) -> float:
        """Worst-case absolute reconstruction error vs the fp32 table."""
        recon = self.dequantize_rows(np.arange(self.rows))
        return float(np.abs(recon - source.data).max())


class QuantizedSparseLengthsSum(Operator):
    """SLS over an int8 table: gather, dequantize, pool."""

    op_type = OP_SLS

    def __init__(
        self, name: str, table: QuantizedEmbeddingTable, lookups_per_sample: int
    ) -> None:
        super().__init__(name)
        if lookups_per_sample < 1:
            raise ValueError("lookups_per_sample must be positive")
        self.table = table
        self.lookups_per_sample = lookups_per_sample

    def forward(self, batch: SparseBatch) -> np.ndarray:  # type: ignore[override]
        ids = batch.ids
        if ids.size and (ids.min() < 0 or ids.max() >= self.table.rows):
            raise IndexError(f"{self.name}: sparse ID out of range")
        gathered = self.table.dequantize_rows(ids)
        out = np.zeros((batch.batch_size, self.table.dim), dtype=np.float32)
        segment = np.repeat(np.arange(batch.batch_size), batch.lengths)
        np.add.at(out, segment, gathered)
        return out

    def parameter_bytes(self) -> int:
        return self.table.storage_bytes()

    def cost(self, batch_size: int) -> OperatorCost:
        lookups = batch_size * self.lookups_per_sample
        row_bytes = self.table.dim * _INT8 + _SCALE_BYTES
        # Dequantize adds one multiply-add per element on top of pooling.
        flops = lookups * self.table.dim * 3
        return OperatorCost(
            flops=flops,
            bytes_read=lookups * (row_bytes + _ID_BYTES),
            bytes_written=batch_size * self.table.dim * 4,
        )

    def address_trace(self, batch_size: int, rng=None):
        rng = rng or np.random.default_rng(0)
        row_bytes = self.table.dim * _INT8 + _SCALE_BYTES
        rows = rng.integers(0, self.table.rows, size=batch_size * self.lookups_per_sample)
        for row in rows:
            yield MemoryAccess(address=int(row) * row_bytes, size=row_bytes)
