"""Fully-connected (FC) layers — the compute-intensive operator class.

FC layers dominate RMC3 (>96% of time together with BatchMatMul) and are
the main beneficiary of wide-SIMD execution (AVX-2 on Haswell/Broadwell,
AVX-512 on Skylake). Their access pattern is a dense stream over the weight
matrix, which is why they show ~0.2 MPKI LLC miss rates in the paper versus
~8 MPKI for embedding lookups.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import MemoryAccess, Operator, OperatorCost, OP_FC

_FP32 = 4


class FullyConnected(Operator):
    """A dense layer ``y = x @ W + b``.

    Args:
        name: operator name (appears in profiles and breakdowns).
        input_dim: fan-in.
        output_dim: fan-out.
        rng: generator for weight initialization (He-style scaling). A fixed
            default seed keeps model construction deterministic.
    """

    op_type = OP_FC

    def __init__(
        self,
        name: str,
        input_dim: int,
        output_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if input_dim < 1 or output_dim < 1:
            raise ValueError("FC dimensions must be positive")
        self.input_dim = input_dim
        self.output_dim = output_dim
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / input_dim)
        self.weight = rng.normal(0.0, scale, size=(input_dim, output_dim)).astype(
            np.float32
        )
        self.bias = np.zeros(output_dim, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(
                f"{self.name}: expected input of shape (batch, {self.input_dim}), "
                f"got {x.shape}"
            )
        return x.astype(np.float32, copy=False) @ self.weight + self.bias

    def parameter_count(self) -> int:
        """Number of trainable scalars (weights + biases)."""
        return self.input_dim * self.output_dim + self.output_dim

    def parameter_bytes(self) -> int:
        return self.parameter_count() * _FP32

    def cost(self, batch_size: int) -> OperatorCost:
        flops = 2 * batch_size * self.input_dim * self.output_dim
        bytes_read = self.parameter_bytes() + batch_size * self.input_dim * _FP32
        bytes_written = batch_size * self.output_dim * _FP32
        return OperatorCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written)

    def address_trace(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[MemoryAccess]:
        """Streaming read of the weight matrix (weights are reused across the
        batch by a blocked GEMM, so the weight stream is emitted once), plus
        a pass over a fresh input/output activation region — new activations
        arrive each invocation, so those misses are compulsory."""
        del rng
        weight_bytes = self.parameter_bytes()
        yield MemoryAccess(address=0, size=weight_bytes)
        in_bytes = batch_size * self.input_dim * _FP32
        out_bytes = batch_size * self.output_dim * _FP32
        act_base = self._fresh_activation_base(in_bytes + out_bytes)
        yield MemoryAccess(address=act_base, size=in_bytes)
        yield MemoryAccess(address=act_base + in_bytes, size=out_bytes, is_write=True)
