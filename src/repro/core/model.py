"""The DLRM-style recommendation model (Figure 3 of the paper).

Dense features flow through the Bottom-MLP; each sparse feature is pooled by
a SparseLengthsSum over its embedding table; the dense representation and
all embedding vectors are concatenated and fed to the Top-MLP, whose final
sigmoid emits the predicted click-through rate (CTR).

The model is assembled from a :class:`~repro.config.model_config.ModelConfig`
so that every preset in :mod:`repro.config.presets` — and any configuration a
user writes — becomes runnable without further code.
"""

from __future__ import annotations

import numpy as np

from ..config.model_config import ModelConfig
from .operators import (
    Activation,
    Concat,
    DotInteraction,
    EmbeddingTable,
    FullyConnected,
    SparseBatch,
    SparseLengthsSum,
)
from .operators.base import Operator, OperatorCost, sum_costs
from .profiler import Profile, Profiler


def _build_mlp(
    prefix: str,
    input_dim: int,
    mlp_config,
    rng: np.random.Generator,
) -> list[Operator]:
    """Expand an MLPConfig into alternating FC and activation operators."""
    ops: list[Operator] = []
    fan_in = input_dim
    last = len(mlp_config.layer_sizes) - 1
    for i, width in enumerate(mlp_config.layer_sizes):
        ops.append(FullyConnected(f"{prefix}:fc{i}", fan_in, width, rng=rng))
        if i < last:
            kind = mlp_config.activation
        else:
            kind = mlp_config.final_activation or mlp_config.activation
        if kind and kind != "none":
            ops.append(Activation(f"{prefix}:{kind}{i}", kind, width))
        fan_in = width
    return ops


class RecommendationModel:
    """An executable DLRM instance built from a :class:`ModelConfig`.

    Args:
        config: the model architecture. Tables with millions of rows allocate
            real memory — use
            :func:`repro.config.presets.scaled_for_execution` for production
            presets.
        rng: parameter-initialization generator (deterministic default).
    """

    def __init__(self, config: ModelConfig, rng: np.random.Generator | None = None) -> None:
        self.config = config
        rng = rng or np.random.default_rng(2020)

        self.bottom_ops = _build_mlp(
            "bottom", config.dense_features, config.bottom_mlp, rng
        )
        self.tables: list[EmbeddingTable] = []
        self.sls_ops: list[SparseLengthsSum] = []
        for i, table_cfg in enumerate(config.embedding_tables):
            table = EmbeddingTable(table_cfg.rows, table_cfg.dim, rng=rng)
            self.tables.append(table)
            self.sls_ops.append(
                SparseLengthsSum(f"emb{i}:sls", table, table_cfg.lookups_per_sample)
            )
        self.interaction_op: DotInteraction | None = None
        if config.interaction == "dot":
            self.interaction_op = DotInteraction(
                "interaction",
                num_vectors=config.num_interaction_vectors,
                dim=config.bottom_mlp.output_dim,
            )
            concat_dims = [
                config.bottom_mlp.output_dim,
                self.interaction_op.output_dim,
            ]
        else:
            concat_dims = [config.bottom_mlp.output_dim] + [
                t.dim for t in config.embedding_tables
            ]
        self.concat_op = Concat("concat", concat_dims)
        self.top_ops = _build_mlp("top", config.top_mlp_input_dim, config.top_mlp, rng)

    # ----------------------------------------------------------------- shape

    def operators(self) -> list[Operator]:
        """All operators in execution order."""
        ops: list[Operator] = [*self.bottom_ops, *self.sls_ops]
        if self.interaction_op is not None:
            ops.append(self.interaction_op)
        ops.append(self.concat_op)
        ops.extend(self.top_ops)
        return ops

    def storage_bytes(self) -> int:
        """Resident parameter bytes of this (possibly scaled) instance."""
        return sum(op.parameter_bytes() for op in self.operators())

    def cost(self, batch_size: int) -> OperatorCost:
        """Aggregate analytical cost of one forward pass."""
        return sum_costs(op.cost(batch_size) for op in self.operators())

    def cost_by_op_type(self, batch_size: int) -> dict[str, OperatorCost]:
        """Analytical cost grouped by Figure-4 operator category."""
        out: dict[str, OperatorCost] = {}
        for op in self.operators():
            cost = op.cost(batch_size)
            if op.op_type in out:
                out[op.op_type] = out[op.op_type] + cost
            else:
                out[op.op_type] = cost
        return out

    # --------------------------------------------------------------- execute

    def _validate_inputs(
        self, dense: np.ndarray, sparse: list[SparseBatch]
    ) -> int:
        if dense.ndim != 2 or dense.shape[1] != self.config.dense_features:
            raise ValueError(
                f"dense input must be (batch, {self.config.dense_features}), "
                f"got {dense.shape}"
            )
        if len(sparse) != len(self.sls_ops):
            raise ValueError(
                f"model has {len(self.sls_ops)} embedding tables but got "
                f"{len(sparse)} sparse inputs"
            )
        batch = dense.shape[0]
        for i, sp in enumerate(sparse):
            if sp.batch_size != batch:
                raise ValueError(
                    f"sparse input {i} has batch {sp.batch_size}, dense has {batch}"
                )
        return batch

    def forward(self, dense: np.ndarray, sparse: list[SparseBatch]) -> np.ndarray:
        """Predict CTR for a batch of user-post pairs.

        Returns a ``(batch,)`` float32 array of probabilities.
        """
        output, _ = self._forward(dense, sparse, profiler=None)
        return output

    def forward_profiled(
        self, dense: np.ndarray, sparse: list[SparseBatch]
    ) -> tuple[np.ndarray, Profile]:
        """Forward pass returning per-operator wall-clock timing."""
        profiler = Profiler()
        output, _ = self._forward(dense, sparse, profiler=profiler)
        return output, profiler.reset()

    def _forward(
        self,
        dense: np.ndarray,
        sparse: list[SparseBatch],
        profiler: Profiler | None,
    ) -> tuple[np.ndarray, None]:
        batch = self._validate_inputs(dense, sparse)

        def run(op: Operator, *inputs):
            if profiler is not None:
                return profiler.run(op, batch, *inputs)
            return op.forward(*inputs)

        x = dense.astype(np.float32, copy=False)
        for op in self.bottom_ops:
            x = run(op, x)

        pooled = [run(sls, sp) for sls, sp in zip(self.sls_ops, sparse)]
        if self.interaction_op is not None:
            stacked = np.stack([x, *pooled], axis=1)
            interactions = run(self.interaction_op, stacked)
            combined = run(self.concat_op, x, interactions)
        else:
            combined = run(self.concat_op, x, *pooled)

        y = combined
        for op in self.top_ops:
            y = run(op, y)
        return y.reshape(-1), None
