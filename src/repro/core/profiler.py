"""Operator-level profiling: wall-clock time + analytical cost per operator.

The paper's single-model analysis (Figure 7 right, Figure 9) is an
operator-level time breakdown. :class:`Profiler` records one
:class:`OperatorRecord` per operator invocation and aggregates time, FLOPs
and bytes by the Figure-4 operator categories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .operators.base import OperatorCost, ZERO_COST, sum_costs


@dataclass(frozen=True)
class OperatorRecord:
    """One profiled operator invocation."""

    name: str
    op_type: str
    seconds: float
    cost: OperatorCost


@dataclass
class Profile:
    """A collection of operator records from one or more forward passes."""

    records: list[OperatorRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total profiled wall-clock time."""
        return sum(r.seconds for r in self.records)

    @property
    def total_cost(self) -> OperatorCost:
        """Aggregate analytical cost across all records."""
        return sum_costs(r.cost for r in self.records)

    def seconds_by_op_type(self) -> dict[str, float]:
        """Wall-clock seconds grouped by operator category."""
        out: dict[str, float] = {}
        for record in self.records:
            out[record.op_type] = out.get(record.op_type, 0.0) + record.seconds
        return out

    def fraction_by_op_type(self) -> dict[str, float]:
        """Share of total time per operator category (sums to 1)."""
        total = self.total_seconds
        if total <= 0.0:
            return {}
        return {k: v / total for k, v in self.seconds_by_op_type().items()}

    def cost_by_op_type(self) -> dict[str, OperatorCost]:
        """Analytical cost grouped by operator category."""
        out: dict[str, OperatorCost] = {}
        for record in self.records:
            out[record.op_type] = out.get(record.op_type, ZERO_COST) + record.cost
        return out

    def merged(self, other: "Profile") -> "Profile":
        """Combine two profiles (e.g. across repeated forward passes)."""
        return Profile(records=self.records + other.records)


class Profiler:
    """Times operator invocations and accumulates a :class:`Profile`.

    Usage::

        profiler = Profiler()
        out = profiler.run(op, batch_size, x)
        profile = profiler.profile
    """

    def __init__(self) -> None:
        self.profile = Profile()

    def run(self, operator, batch_size: int, *inputs):
        """Execute ``operator`` on ``inputs`` and record timing + cost."""
        # This is the repo's one sanctioned wall-clock measurement point
        # outside benchmarks/: the Figure-7 "measured" operator breakdown
        # is *defined* as real numpy execution time, so reading the host
        # clock here is the feature, not a leak.
        start = time.perf_counter()  # staticcheck: ignore[SC904]
        result = operator.forward(*inputs)
        elapsed_s = time.perf_counter() - start  # staticcheck: ignore[SC904]
        self.profile.records.append(
            OperatorRecord(
                name=operator.name,
                op_type=operator.op_type,
                seconds=elapsed_s,
                cost=operator.cost(batch_size),
            )
        )
        return result

    def reset(self) -> Profile:
        """Return the accumulated profile and start a fresh one."""
        finished = self.profile
        self.profile = Profile()
        return finished
