"""Core library: operators, model assembly, profiling, characterization."""

from .model import RecommendationModel
from .ncf import NCFModel
from .profiler import OperatorRecord, Profile, Profiler
from .summary import architecture_diagram, model_summary
from .workload_stats import (
    WorkloadPoint,
    figure2_points,
    resnet50_point,
    rnn_translation_point,
    workload_point,
)

__all__ = [
    "RecommendationModel",
    "NCFModel",
    "OperatorRecord",
    "Profile",
    "Profiler",
    "architecture_diagram",
    "model_summary",
    "WorkloadPoint",
    "figure2_points",
    "resnet50_point",
    "rnn_translation_point",
    "workload_point",
]
