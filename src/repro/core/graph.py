"""Abstract operator graphs: shape-only views of a model configuration.

Production configurations have embedding tables up to 10 GB; timing
analysis must not require allocating them. :func:`config_ops` expands a
:class:`~repro.config.model_config.ModelConfig` into lightweight
:class:`OpSpec` records — one per operator, in execution order — carrying
exactly the shape information the :mod:`repro.hw` timing model and the
fleet cycle accountant need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import DTYPE_BYTES, ModelConfig
from .operators.base import (
    OP_ACTIVATION,
    OP_BATCH_MATMUL,
    OP_CONCAT,
    OP_FC,
    OP_SLS,
)

_FP32 = 4


@dataclass(frozen=True)
class OpSpec:
    """Shape summary of one operator.

    Attributes:
        name: operator name, unique within the model.
        op_type: Figure-4 category (FC, SLS, Concat, Activation, ...).
        flops_per_sample: FLOPs per batch element.
        weight_bytes: resident parameter bytes (0 for stateless ops).
        activation_bytes_per_sample: activation traffic per batch element.
        table_rows: embedding-table rows (SLS only).
        embedding_dim: embedding dimension (SLS only).
        lookups_per_sample: pooled gathers per element (SLS only).
        dtype_bytes: bytes per embedding element (4 for fp32, 2 for fp16,
            1 for int8 — quantized tables shrink every gathered row).
    """

    name: str
    op_type: str
    flops_per_sample: int
    weight_bytes: int
    activation_bytes_per_sample: int
    table_rows: int = 0
    embedding_dim: int = 0
    lookups_per_sample: int = 0
    dtype_bytes: int = 4


def _mlp_ops(prefix: str, input_dim: int, mlp) -> list[OpSpec]:
    ops: list[OpSpec] = []
    fan_in = input_dim
    last = len(mlp.layer_sizes) - 1
    for i, width in enumerate(mlp.layer_sizes):
        ops.append(
            OpSpec(
                name=f"{prefix}:fc{i}",
                op_type=OP_FC,
                flops_per_sample=2 * fan_in * width,
                weight_bytes=(fan_in * width + width) * _FP32,
                activation_bytes_per_sample=(fan_in + width) * _FP32,
            )
        )
        kind = mlp.activation if i < last else (mlp.final_activation or mlp.activation)
        if kind and kind != "none":
            ops.append(
                OpSpec(
                    name=f"{prefix}:{kind}{i}",
                    op_type=OP_ACTIVATION,
                    flops_per_sample=width * (4 if kind == "sigmoid" else 1),
                    weight_bytes=0,
                    activation_bytes_per_sample=2 * width * _FP32,
                )
            )
        fan_in = width
    return ops


def config_ops(config: ModelConfig) -> list[OpSpec]:
    """All operators of ``config`` in execution order, shapes only."""
    ops = _mlp_ops("bottom", config.dense_features, config.bottom_mlp)
    for i, table in enumerate(config.embedding_tables):
        ops.append(
            OpSpec(
                name=f"emb{i}:sls",
                op_type=OP_SLS,
                flops_per_sample=table.lookups_per_sample * table.dim,
                weight_bytes=table.storage_bytes(config.dtype),
                activation_bytes_per_sample=table.dim * _FP32,
                table_rows=table.rows,
                embedding_dim=table.dim,
                lookups_per_sample=table.lookups_per_sample,
                dtype_bytes=DTYPE_BYTES[config.dtype],
            )
        )
    if config.interaction == "dot":
        v = config.num_interaction_vectors
        dim = config.bottom_mlp.output_dim
        ops.append(
            OpSpec(
                name="interaction",
                op_type=OP_BATCH_MATMUL,
                flops_per_sample=config.interaction_flops_per_sample(),
                weight_bytes=0,
                activation_bytes_per_sample=(v * dim + v * (v - 1) // 2) * _FP32,
            )
        )
    concat_dim = config.top_mlp_input_dim
    ops.append(
        OpSpec(
            name="concat",
            op_type=OP_CONCAT,
            flops_per_sample=0,
            weight_bytes=0,
            activation_bytes_per_sample=2 * concat_dim * _FP32,
        )
    )
    ops.extend(_mlp_ops("top", concat_dim, config.top_mlp))
    return ops


def fc_weight_bytes(config: ModelConfig) -> int:
    """Total FC weight bytes — the dense working set a core must keep warm."""
    return sum(op.weight_bytes for op in config_ops(config) if op.op_type == OP_FC)
