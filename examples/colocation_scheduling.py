"""Co-location scheduling: trading single-model latency for throughput.

Reproduces the paper's Section VI reasoning as a scheduler would use it:
sweep the number of co-located RMC2 instances per socket on each server
generation, inspect the latency/throughput frontier (Figure 10), and pick
the SLA-optimal placement — including the heterogeneity-aware routing the
paper's conclusion calls for.

Run:  python examples/colocation_scheduling.py
"""

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import ALL_SERVERS
from repro.serving import SLA, best_placement, colocation_sweep, route_to_best_server

BATCH = 32


def main() -> None:
    sla = SLA(deadline_s=0.015)

    print(f"Latency/throughput frontier for {RMC2_SMALL.name} "
          f"(batch {BATCH}, SLA {sla.deadline_s * 1e3:.0f} ms):\n")
    rows = []
    frontiers = {
        server.name: colocation_sweep(server, RMC2_SMALL, BATCH, sla, max_jobs=24)
        for server in ALL_SERVERS
    }
    for n in (1, 2, 4, 8, 12, 16, 18, 20, 24):
        row = [n]
        for server in ALL_SERVERS:
            point = frontiers[server.name][n - 1]
            marker = "" if point.meets_sla else " (!)"
            row.append(
                f"{point.latency_s * 1e3:5.1f} ms / "
                f"{point.items_per_s / 1e3:5.1f}k{marker}"
            )
        rows.append(row)
    print(format_table(["N"] + [s.name for s in ALL_SERVERS], rows))
    print("(!) = SLA violated at that co-location degree\n")

    print("SLA-optimal placements per server:")
    for server in ALL_SERVERS:
        decision = best_placement(server, RMC2_SMALL, BATCH, sla, max_jobs=24)
        if decision is None:
            print(f"  {server.name:<10} cannot meet the SLA")
        else:
            print(f"  {server.name:<10} N={decision.num_jobs:<3} "
                  f"{decision.latency_s * 1e3:5.1f} ms  "
                  f"{decision.items_per_s / 1e3:6.1f}k items/s")

    print("\nHeterogeneity-aware routing (best server per model class):")
    for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL):
        for deadline in (0.002, 0.050):
            decision = route_to_best_server(
                list(ALL_SERVERS), config, BATCH, SLA(deadline)
            )
            if decision is None:
                print(f"  {config.name:<11} SLA {deadline * 1e3:4.0f} ms: infeasible")
            else:
                print(f"  {config.name:<11} SLA {deadline * 1e3:4.0f} ms: "
                      f"{decision.server_name:<10} N={decision.num_jobs:<3} "
                      f"{decision.items_per_s / 1e3:7.1f}k items/s")


if __name__ == "__main__":
    main()
