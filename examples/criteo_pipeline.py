"""End-to-end Criteo-format pipeline: files → preprocessing → training.

Generates a synthetic click log in the exact Criteo TSV schema (the public
dataset the paper points to for instrumenting its benchmark), preprocesses
it the standard way (log-transform + categorical hashing), and trains a
Criteo-shaped DLRM on it.

Run:  python examples/criteo_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import RecommendationModel
from repro.data import (
    CriteoPreprocessor,
    criteo_model_config,
    read_criteo,
    write_synthetic_criteo,
)
from repro.train import Adagrad, TrainableDLRM
from repro.train.losses import bce_with_logits
from repro.train.metrics import roc_auc


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "day_0.tsv"
        write_synthetic_criteo(path, num_records=4096, seed=7, click_rate=0.3)
        records = read_criteo(path)
        print(f"wrote + parsed {len(records)} Criteo-format records "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        config = criteo_model_config(rows_per_table=20_000)
        model = RecommendationModel(config)
        prep = CriteoPreprocessor(config)
        print(f"model: {config.name} — {config.num_tables} tables, "
              f"{model.storage_bytes() / 1e6:.1f} MB\n")

        train, held_out = records[:3072], records[3072:]
        trainable = TrainableDLRM(model)
        optimizer = Adagrad(lr=0.05)
        rng = np.random.default_rng(0)
        from repro.train.losses import bce_with_logits_grad

        for epoch in range(3):
            order = rng.permutation(len(train))
            losses = []
            for start in range(0, len(train), 256):
                chunk = [train[i] for i in order[start : start + 256]]
                dense, sparse, labels = prep.batch(chunk)
                logits, cache = trainable.forward_logits(dense, sparse)
                losses.append(bce_with_logits(logits, labels))
                grads = trainable.backward(
                    bce_with_logits_grad(logits, labels), cache
                )
                optimizer.apply(model, grads)

            t_dense, t_sparse, t_labels = prep.batch(train[:1024])
            h_dense, h_sparse, h_labels = prep.batch(held_out)
            train_auc = roc_auc(model.forward(t_dense, t_sparse), t_labels)
            held_auc = roc_auc(model.forward(h_dense, h_sparse), h_labels)
            print(f"epoch {epoch}: train loss {np.mean(losses):.4f}, "
                  f"train AUC {train_auc:.3f}, held-out AUC {held_auc:.3f}")

        print("\nthe synthetic labels carry no learnable signal, so the "
              "model memorizes the training set (train AUC -> 1) while "
              "held-out AUC stays ~0.5 — exactly the overfitting signature "
              "a real pipeline must watch for. Drop real Criteo day files "
              "into read_criteo() for genuine signal.")


if __name__ == "__main__":
    main()
