"""The two-stage recommendation pipeline of Figure 6, end to end.

A lightweight RMC1 filters thousands of candidate posts down to a short
list; a heavyweight RMC3 ranks the survivors; the top ten are returned.
Runs the real (scaled) models and compares measured wall time against the
timing model's production-scale prediction per server generation.

Run:  python examples/filtering_ranking_pipeline.py
"""

from repro.config import RMC1_SMALL, RMC3_SMALL, scaled_for_execution
from repro.core import RecommendationModel
from repro.hw import ALL_SERVERS
from repro.serving import FilterRankPipeline, estimate_pipeline_latency

CANDIDATES = 2048
FILTER_KEEP = 64
FINAL_KEEP = 10


def main() -> None:
    print(f"candidates: {CANDIDATES}  ->  filter keeps {FILTER_KEEP}  "
          f"->  rank returns {FINAL_KEEP}\n")

    filter_model = RecommendationModel(scaled_for_execution(RMC1_SMALL, 20_000))
    rank_model = RecommendationModel(scaled_for_execution(RMC3_SMALL, 20_000))
    pipeline = FilterRankPipeline(
        filter_model,
        rank_model,
        filter_keep=FILTER_KEEP,
        final_keep=FINAL_KEEP,
        batch_size=128,
    )
    result = pipeline.recommend(candidate_count=CANDIDATES, seed=7)

    print("recommended posts (candidate index : ranking score):")
    for idx, score in zip(result.selected_indices, result.scores):
        print(f"  #{idx:<5} {score:.4f}")
    print(f"\nmeasured on this host:")
    print(f"  filtering ({CANDIDATES} posts, {filter_model.config.name}): "
          f"{result.filter_seconds * 1e3:7.2f} ms")
    print(f"  ranking   ({FILTER_KEEP} posts, {rank_model.config.name}): "
          f"{result.rank_seconds * 1e3:7.2f} ms")
    print(f"  total: {result.total_seconds * 1e3:.2f} ms")

    print("\npredicted at production scale per server generation:")
    for server in ALL_SERVERS:
        estimate = estimate_pipeline_latency(
            server, RMC1_SMALL, RMC3_SMALL, CANDIDATES, FILTER_KEEP, batch_size=128
        )
        print(f"  {server.name:<10} filter {estimate.filter_seconds * 1e3:6.2f} ms + "
              f"rank {estimate.rank_seconds * 1e3:6.2f} ms = "
              f"{estimate.total_seconds * 1e3:6.2f} ms")


if __name__ == "__main__":
    main()
