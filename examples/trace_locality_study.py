"""Embedding-trace locality study (Figure 14) and its system implications.

Generates the synthetic production-trace suite, measures each trace's
unique-ID fraction and its LLC miss rate through the simulated Broadwell
cache hierarchy, then shows what that locality is worth: predicted RMC2
inference latency with and without exploiting it (the caching/prefetching
opportunity the paper's open-source trace generators exist to study).

Run:  python examples/trace_locality_study.py
"""

from repro.analysis import format_table, measure_sls_trace_mpki
from repro.config import RMC2_SMALL
from repro.core.operators import EmbeddingTable, SparseLengthsSum
from repro.data import random_trace, synthetic_production_traces
from repro.hw import BROADWELL, TimingModel

TABLE_ROWS = 1_000_000
TRACE_LENGTH = 20_000


def main() -> None:
    traces = [random_trace(TABLE_ROWS, TRACE_LENGTH)]
    traces += synthetic_production_traces(TABLE_ROWS, TRACE_LENGTH)

    table = EmbeddingTable(TABLE_ROWS, 32)
    sls = SparseLengthsSum("sls", table, lookups_per_sample=80)
    timing = TimingModel(BROADWELL)

    rows = []
    for trace in traces:
        unique = trace.unique_fraction()
        mpki = measure_sls_trace_mpki(sls, BROADWELL, trace.ids).mpki
        # A cache/prefetcher that captures the trace's reuse turns repeated
        # IDs into LLC hits; feed that into the latency model.
        locality = 1.0 - unique
        latency_s = timing.model_latency(
            RMC2_SMALL, 16, locality_hit_ratio=locality
        ).total_seconds
        rows.append(
            [
                trace.name,
                f"{100 * unique:.1f}",
                f"{mpki:.2f}",
                f"{latency_s * 1e3:.2f}",
            ]
        )
    baseline_s = timing.model_latency(RMC2_SMALL, 16).total_seconds
    print(format_table(
        ["trace", "unique IDs %", "LLC MPKI", "RMC2 latency ms (locality-aware)"],
        rows,
        title="Figure 14: trace locality and the caching opportunity",
    ))
    print(f"\nbaseline RMC2 latency (no locality exploited): {baseline_s * 1e3:.2f} ms")
    print("traces with few unique IDs cut SLS DRAM traffic — the paper's "
          "motivation for intelligent caching and prefetching.")


if __name__ == "__main__":
    main()
