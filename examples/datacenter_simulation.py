"""Capstone: a recommendation data center, end to end.

Combines the library's layers the way a capacity planner would:

1. **cluster scheduling** — split a heterogeneous fleet (Haswell +
   Broadwell + Skylake) across the RMC1/RMC2/RMC3 demand mix, comparing
   blind and heterogeneity-aware policies (LP-based);
2. **machine-level placement** — pick the SLA-optimal co-location degree
   for the dominant assignment;
3. **request routing** — simulate query streams over the provisioned
   replicas and report the tail latency each routing policy delivers.

Run:  python examples/datacenter_simulation.py
"""

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, HASWELL, SKYLAKE
from repro.serving import (
    MachinePool,
    SLA,
    WorkloadDemand,
    aware_capacity,
    best_placement,
    blind_capacity,
    compare_policies,
)

POOLS = [
    MachinePool(HASWELL, 16),
    MachinePool(BROADWELL, 16),
    MachinePool(SKYLAKE, 16),
]
DEMANDS = [
    WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.001), weight=0.45),
    WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.35),
    WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(0.050), weight=0.20),
]


def step1_cluster() -> None:
    print("1) fleet scheduling (48 machines, 3 generations, 3 model classes)")
    blind = blind_capacity(POOLS, DEMANDS)
    aware = aware_capacity(POOLS, DEMANDS)
    rows = []
    for pool, aware_row in zip(POOLS, aware.assignment):
        rows.append(
            [pool.server.name, f"{pool.count}"]
            + [f"{100 * f:.0f}%" for f in aware_row]
        )
    print(format_table(
        ["pool", "machines"] + [d.config.model_class for d in DEMANDS],
        rows,
        title="   aware assignment (fraction of machine time per class):",
    ))
    print(f"   blind fleet throughput: {blind.served_scale:,.0f} items/s")
    print(f"   aware fleet throughput: {aware.served_scale:,.0f} items/s "
          f"({aware.served_scale / blind.served_scale:.2f}x)\n")


def step2_placement() -> None:
    print("2) machine-level placement (SLA-optimal co-location)")
    for demand in DEMANDS:
        for server in (BROADWELL, SKYLAKE):
            decision = best_placement(
                server, demand.config, demand.batch_size, demand.sla, max_jobs=24
            )
            if decision is None:
                print(f"   {demand.config.model_class} on {server.name}: infeasible")
            else:
                print(f"   {demand.config.model_class} on {server.name:<10} "
                      f"N={decision.num_jobs:<3} "
                      f"{decision.latency_s * 1e3:6.2f} ms  "
                      f"{decision.items_per_s / 1e3:7.1f}k items/s")
    print()


def step3_routing() -> None:
    print("3) request routing over 12 Broadwell RMC1 replicas at 85% load")
    results = compare_policies(
        BROADWELL, RMC1_SMALL, batch_size=16, num_machines=12,
        utilization=0.85, duration_s=2.0,
    )
    rows = []
    for policy, result in results.items():
        summary = result.summary()
        rows.append(
            [policy, f"{summary.p50 * 1e3:.2f}", f"{summary.p99 * 1e3:.2f}"]
        )
    print(format_table(["policy", "p50 ms", "p99 ms"], rows))


def main() -> None:
    step1_cluster()
    step2_placement()
    step3_routing()


if __name__ == "__main__":
    main()
