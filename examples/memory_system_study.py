"""Memory-system optimization study for the embedding-dominated RMC2.

Walks the three remedies the paper's analysis motivates for models whose
latency lives in SparseLengthsSum:

1. software embedding caches exploiting production trace locality
   (Figure 14) — hit ratio by policy and capacity;
2. int8-quantized tables — 4x smaller storage and gathered bytes, with the
   measured numerical error of the executable quantized operator;
3. DRAM/NVM tiering — capacity savings vs lookup-latency cost;
4. near-memory SLS execution — end-to-end Amdahl gain.

Run:  python examples/memory_system_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.core.operators import (
    EmbeddingTable,
    QuantizedEmbeddingTable,
    QuantizedSparseLengthsSum,
    SparseBatch,
    SparseLengthsSum,
)
from repro.data import ZipfSparseGenerator
from repro.hw import BROADWELL, TimingModel
from repro.memory import (
    LfuRowCache,
    LruRowCache,
    NmpConfig,
    nmp_speedup,
    plan_tiering,
)


def cache_study(rows: np.ndarray) -> None:
    print("1) software embedding caches (Zipf-popular IDs, long tail):")
    table_rows = []
    for capacity in (10_000, 50_000, 200_000):
        lru = LruRowCache(capacity).replay(rows)
        lfu = LfuRowCache(capacity).replay(rows)
        table_rows.append(
            [f"{capacity:,} rows", f"{100 * lru.hit_ratio:.1f}%",
             f"{100 * lfu.hit_ratio:.1f}%"]
        )
    print(format_table(["capacity", "LRU hit", "LFU hit"], table_rows))


def quantization_study() -> None:
    print("\n2) int8 row-wise quantization (executable):")
    fp32 = EmbeddingTable(20_000, 32, rng=np.random.default_rng(1))
    q = QuantizedEmbeddingTable.quantize(fp32)
    sls = SparseLengthsSum("fp32", fp32, 80)
    qsls = QuantizedSparseLengthsSum("int8", q, 80)
    batch = SparseBatch.from_lists(
        [list(np.random.default_rng(2).integers(0, 20_000, 80)) for _ in range(8)]
    )
    err = np.abs(qsls.forward(batch) - sls.forward(batch)).max()
    print(f"   storage: {fp32.storage_bytes() / 1e6:.2f} MB -> "
          f"{q.storage_bytes() / 1e6:.2f} MB "
          f"({fp32.storage_bytes() / q.storage_bytes():.1f}x smaller)")
    print(f"   max pooled-output error: {err:.5f}")
    print(f"   production RMC2 tables: "
          f"{RMC2_SMALL.embedding_storage_bytes() / 1e9:.1f} GB -> "
          f"{RMC2_SMALL.embedding_storage_bytes() / 4e9:.1f} GB")


def tiering_study(rows: np.ndarray, table_rows: int) -> None:
    print("\n3) DRAM/NVM tiering (hot set profiled on first half, "
          "evaluated on second):")
    half = rows.size // 2
    profile, evaluate = rows[:half], rows[half:]
    table = []
    for fraction in (0.002, 0.01, 0.05):
        plan = plan_tiering(RMC2_SMALL, profile, table_rows, fraction, evaluate)
        table.append(
            [f"{100 * fraction:.1f}% DRAM",
             f"{100 * plan.dram_hit_ratio:.0f}%",
             f"{plan.slowdown_vs_dram:.2f}x",
             f"{100 * plan.dram_savings_fraction:.0f}%"]
        )
    print(format_table(
        ["DRAM budget", "lookups served by DRAM", "per-lookup slowdown",
         "DRAM saved"], table))


def nmp_study() -> None:
    print("\n4) near-memory SLS execution:")
    for speedup in (4, 8, 16):
        result = nmp_speedup(
            BROADWELL, RMC2_SMALL, 16, NmpConfig(sls_speedup=speedup)
        )
        print(f"   {speedup:>2}x SLS engine -> "
              f"{result.end_to_end_speedup:.2f}x end-to-end "
              f"(SLS share {100 * result.sls_share:.0f}%)")


def main() -> None:
    baseline = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 16).total_seconds
    print(f"target: {RMC2_SMALL.name}, baseline Broadwell latency "
          f"{baseline * 1e3:.2f} ms at batch 16\n")
    table_rows = 1_000_000
    generator = ZipfSparseGenerator(table_rows, 1, alpha=1.05)
    rows = generator.ids(60_000, np.random.default_rng(0))
    cache_study(rows)
    quantization_study()
    tiering_study(rows, table_rows)
    nmp_study()


if __name__ == "__main__":
    main()
