"""Quickstart: build, run, and characterize a recommendation model.

Demonstrates the three layers of the library:

1. configure a production-class model (RMC2, the memory-intensive ranking
   class) and instantiate an executable scaled-down copy;
2. run real inference on synthetic user-post inputs and profile which
   operators the time goes to;
3. predict full-production-scale latency on the paper's three server
   generations with the timing model (no multi-GB allocation needed).

Run:  python examples/quickstart.py
"""

from repro.config import RMC2_SMALL, scaled_for_execution
from repro.core import RecommendationModel, architecture_diagram
from repro.data import generate_inputs
from repro.hw import ALL_SERVERS, TimingModel


def main() -> None:
    # --- 1. configure + instantiate -------------------------------------
    production = RMC2_SMALL
    print(f"model: {production.name}")
    print(f"  embedding tables : {production.num_tables}")
    print(f"  total lookups    : {production.total_lookups} per sample")
    print(f"  embedding storage: {production.embedding_storage_bytes() / 1e9:.1f} GB")
    print(f"  MLP parameters   : {production.mlp_parameter_count():,}")
    print("\n" + architecture_diagram(production))

    executable = scaled_for_execution(production, max_rows=20_000)
    model = RecommendationModel(executable)
    print(f"\ninstantiated {executable.name} "
          f"({model.storage_bytes() / 1e6:.1f} MB resident)")

    # --- 2. run real inference -------------------------------------------
    batch = 64
    dense, sparse = generate_inputs(executable, batch, seed=1)
    ctr, profile = model.forward_profiled(dense, sparse)
    print(f"\nran a batch of {batch} user-post pairs")
    print(f"  predicted CTR range: {ctr.min():.3f} .. {ctr.max():.3f}")
    print(f"  wall time: {profile.total_seconds * 1e3:.2f} ms")
    print("  time by operator:")
    for op_type, share in sorted(
        profile.fraction_by_op_type().items(), key=lambda kv: -kv[1]
    ):
        print(f"    {op_type:<12} {100 * share:5.1f}%")

    # --- 3. predict production-scale latency ------------------------------
    print("\npredicted production latency (full tables, batch 16):")
    for server in ALL_SERVERS:
        latency = TimingModel(server).model_latency(production, 16)
        print(f"  {server.name:<10} {latency.total_seconds * 1e3:7.3f} ms "
              f"(SLS share {100 * latency.fraction_by_op_type()['SLS']:.0f}%)")


if __name__ == "__main__":
    main()
