"""Capacity planning for an embedding cache from a lookup trace.

Given a trace with production-like locality, one Mattson pass yields the
LRU hit ratio at every candidate capacity; feeding those ratios into the
server timing model turns them into latency savings, and the planner picks
the knee — the capacity beyond which more rows buy ~nothing because the
trace's compulsory tail remains.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.data import TemporalReuseGenerator, reuse_profile
from repro.hw import BROADWELL, TimingModel
from repro.memory import plan_cache_size

TABLE_ROWS = 1_000_000
CAPACITIES = [1_000, 5_000, 20_000, 100_000, 500_000]


def main() -> None:
    rng = np.random.default_rng(11)
    generator = TemporalReuseGenerator(TABLE_ROWS, 1, reuse_probability=0.65)
    trace = generator.ids(40_000, rng)

    profile = reuse_profile(trace)
    print(f"trace: {profile.lookups:,} lookups, "
          f"{100 * profile.compulsory_fraction:.1f}% compulsory (unique)")
    ws = profile.working_set_size(0.5)
    print(f"rows needed for a 50% hit ratio: "
          f"{ws:,}" if ws else "50% hit ratio unreachable")

    baseline = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 16).total_seconds
    plan = plan_cache_size(
        BROADWELL, RMC2_SMALL, trace, CAPACITIES, profile=profile
    )
    rows = [
        [
            f"{p.capacity_rows:,}",
            f"{p.cache_bytes / 1e6:.1f} MB",
            f"{100 * p.hit_ratio:.1f}%",
            f"{p.latency_s * 1e3:.2f} ms",
            f"{100 * p.latency_reduction:.1f}%",
        ]
        for p in plan.points
    ]
    print()
    print(format_table(
        ["capacity", "cache size", "LRU hit", "RMC2 latency", "saved"],
        rows,
        title=f"cache-capacity sweep (baseline {baseline * 1e3:.2f} ms):",
    ))
    if plan.recommended is not None:
        r = plan.recommended
        print(f"\nrecommended: {r.capacity_rows:,} rows "
              f"({r.cache_bytes / 1e6:.1f} MB) — "
              f"{100 * r.latency_reduction:.1f}% latency saved; "
              "larger caches only chase the compulsory tail.")


if __name__ == "__main__":
    main()
