"""Train a DLRM on synthetic CTR data with planted structure.

Builds a scaled RMC1-class model, generates a click stream from a hidden
teacher (per-ID affinities + dense weights), trains with minibatch SGD and
sparse embedding updates, and reports log-loss/AUC against the teacher.

Run:  python examples/train_ctr_model.py
"""

from repro.config import RMC1_SMALL, scaled_for_execution
from repro.core import RecommendationModel
from repro.data import SyntheticCtrDataset
from repro.train import TrainableDLRM, Trainer


def main() -> None:
    config = scaled_for_execution(RMC1_SMALL, max_rows=5_000)
    model = RecommendationModel(config)
    trainable = TrainableDLRM(model)
    dataset = SyntheticCtrDataset(config, signal_scale=2.0, zipf_alpha=0.8, seed=42)
    trainer = Trainer(trainable, dataset, lr=0.2)

    print(f"model: {config.name} "
          f"({model.storage_bytes() / 1e6:.1f} MB, "
          f"{config.total_lookups} lookups/sample)")
    loss0, auc0 = trainer.evaluate(samples=4000)
    print(f"before training: log-loss {loss0:.4f}, AUC {auc0:.3f}")

    total_steps = 0
    for round_steps in (100, 200, 400):
        report = trainer.fit(steps=round_steps, batch_size=256, eval_samples=4000)
        total_steps += round_steps
        print(f"after {total_steps:>4} steps: "
              f"train loss {report.final_loss:.4f}, "
              f"eval log-loss {report.eval_log_loss:.4f}, "
              f"AUC {report.eval_auc:.3f}")

    batch = dataset.batch(5)
    probs = trainable.predict(batch.dense, batch.sparse)
    print("\nsample predictions vs labels:")
    for p, y in zip(probs, batch.labels):
        print(f"  predicted CTR {p:.3f}   clicked: {int(y)}")


if __name__ == "__main__":
    main()
