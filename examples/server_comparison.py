"""Server-generation shopping guide for recommendation inference.

Reproduces the paper's Figure 8 reasoning as a decision aid: given a model
class and an SLA, which server generation should serve it, and at what
batch size? Broadwell's higher clock wins at small batches; Skylake's
AVX-512 and higher DRAM bandwidth win once batching can be exploited.

Run:  python examples/server_comparison.py
"""

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import ALL_SERVERS, TimingModel
from repro.serving import SLA

BATCHES = (1, 4, 16, 64, 128, 256)


def max_batch_under_sla(server, config, sla: SLA) -> tuple[int, float] | None:
    """Largest benchmark batch whose latency meets the SLA, with items/s."""
    timing = TimingModel(server)
    best = None
    for batch in BATCHES:
        latency_s = timing.model_latency(config, batch).total_seconds
        if latency_s <= sla.deadline_s:
            best = (batch, batch / latency_s)
    return best


def main() -> None:
    for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL):
        rows = []
        for batch in BATCHES:
            row = [batch]
            latencies = {}
            for server in ALL_SERVERS:
                lat = TimingModel(server).model_latency(config, batch).total_seconds
                latencies[server.name] = lat
                row.append(f"{lat * 1e3:.3f}")
            row.append(min(latencies, key=latencies.get))
            rows.append(row)
        print(format_table(
            ["batch"] + [f"{s.name} ms" for s in ALL_SERVERS] + ["best"],
            rows,
            title=f"\n{config.name}: latency vs batch",
        ))

    print("\nScheduling under a 10 ms search-style SLA (paper Section V):")
    sla = SLA(deadline_s=0.010)
    for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL):
        for server in ALL_SERVERS:
            best = max_batch_under_sla(server, config, sla)
            if best is None:
                print(f"  {config.name:<11} on {server.name:<10}: SLA infeasible")
            else:
                batch, throughput = best
                print(f"  {config.name:<11} on {server.name:<10}: "
                      f"batch {batch:>3}, {throughput:,.0f} items/s")


if __name__ == "__main__":
    main()
